#include "core/coverage.hpp"

#include <algorithm>

#include "abi/fcntl.hpp"
#include "trace/syz_format.hpp"

namespace iocov::core {

ArgCoverage* CoverageReport::find_input(std::string_view base,
                                        std::string_view key) {
    for (auto& in : inputs)
        if (in.base == base && in.key == key) return &in;
    return nullptr;
}

const ArgCoverage* CoverageReport::find_input(std::string_view base,
                                              std::string_view key) const {
    for (const auto& in : inputs)
        if (in.base == base && in.key == key) return &in;
    return nullptr;
}

OutputCoverage* CoverageReport::find_output(std::string_view base) {
    for (auto& out : outputs)
        if (out.base == base) return &out;
    return nullptr;
}

const OutputCoverage* CoverageReport::find_output(
    std::string_view base) const {
    for (const auto& out : outputs)
        if (out.base == base) return &out;
    return nullptr;
}

void CoverageReport::merge(const CoverageReport& other) {
    events_seen += other.events_seen;
    events_tracked += other.events_tracked;
    for (const auto& oin : other.inputs) {
        if (ArgCoverage* in = find_input(oin.base, oin.key)) {
            in->hist.merge(oin.hist);
            in->combo_cardinality.merge(oin.combo_cardinality);
            in->combo_cardinality_rdonly.merge(oin.combo_cardinality_rdonly);
            in->pairs.merge(oin.pairs);
        } else {
            inputs.push_back(oin);
        }
    }
    for (const auto& oout : other.outputs) {
        if (OutputCoverage* out = find_output(oout.base))
            out->hist.merge(oout.hist);
        else
            outputs.push_back(oout);
    }
}

namespace {

std::vector<std::string> combo_declared() {
    // Up to six flags were ever combined in the paper's data; declare
    // 1..6 plus an overflow bucket.
    return {"1", "2", "3", "4", "5", "6", "7+"};
}

std::string cardinality_label(std::size_t n) {
    if (n >= 7) return "7+";
    return std::to_string(n);
}

}  // namespace

Analyzer::Analyzer(const std::vector<SyscallSpec>& registry)
    : table_(registry) {
    input_parts_.reserve(table_.arg_slot_count());
    output_parts_.reserve(registry.size());
    for (const auto& spec : registry) {
        for (const auto& arg : spec.args) {
            auto part = make_input_partitioner(spec.base, arg);
            ArgCoverage cov;
            cov.base = spec.base;
            cov.key = arg.key;
            cov.cls = arg.cls;
            cov.hist = stats::PartitionHistogram::with_partitions(
                part->declared());
            if (spec.base == "open" && arg.key == "flags") {
                open_flags_slot_ = input_parts_.size();
                cov.combo_cardinality =
                    stats::PartitionHistogram::with_partitions(
                        combo_declared());
                cov.combo_cardinality_rdonly =
                    stats::PartitionHistogram::with_partitions(
                        combo_declared());
            }
            report_.inputs.push_back(std::move(cov));
            input_parts_.push_back(std::move(part));
        }
        OutputPartitioner opart(spec.success, spec.errors);
        OutputCoverage ocov;
        ocov.base = spec.base;
        ocov.success = spec.success;
        ocov.hist = stats::PartitionHistogram::with_partitions(
            opart.declared());
        report_.outputs.push_back(std::move(ocov));
        output_parts_.push_back(std::move(opart));
    }
}

void Analyzer::consume(const trace::TraceEvent& event) {
    ++report_.events_seen;
    const auto view = table_.resolve(event);
    if (!view) return;
    ++report_.events_tracked;
    consume_input(*view);
    // Declarative inputs (e.g. parsed syzkaller programs) carry no
    // observed return value; they contribute input coverage only.
    if (!trace::is_input_only(event)) consume_output(*view);
}

void Analyzer::consume(const trace::TraceEvent& event,
                       const SyscallTable::Binding& binding) {
    ++report_.events_seen;
    if (!binding.tracked) return;
    ++report_.events_tracked;
    const auto view = SyscallTable::view(binding, event);
    consume_input(view);
    if (!trace::is_input_only(event)) consume_output(view);
}

void Analyzer::consume_all(const std::vector<trace::TraceEvent>& events) {
    for (const auto& ev : events) consume(ev);
}

void Analyzer::consume_input(const CanonicalView& view) {
    const auto& args = view.spec->args;
    const std::size_t base_slot = table_.arg_offset(view.id);
    for (std::size_t i = 0; i < args.size(); ++i) {
        // Args arrive in prototype order, so slot i is the first place
        // to look — the hint turns the common case into one compare.
        const trace::ArgValue* value = view.find_hinted(args[i].key, i);
        if (!value) continue;  // variant without this argument
        const std::size_t slot = base_slot + i;
        ArgCoverage& cov = report_.inputs[slot];

        // Labels land in a member scratch and histogram bumps go
        // through string_views: after the histograms have seen each
        // label once, this whole path performs zero heap allocations.
        label_scratch_.clear();
        input_parts_[slot]->labels_into(*value, label_scratch_);
        const std::size_t n_labels = label_scratch_.size();
        for (std::size_t l = 0; l < n_labels; ++l)
            cov.hist.add(label_scratch_[l]);

        // Bitmap combination statistics (open flags only).
        if (slot == open_flags_slot_) {
            cov.combo_cardinality.add(cardinality_label(n_labels));
            bool has_rdonly = false;
            for (std::size_t l = 0; l < n_labels && !has_rdonly; ++l)
                has_rdonly = label_scratch_[l] == "O_RDONLY";
            if (has_rdonly)
                cov.combo_cardinality_rdonly.add(cardinality_label(n_labels));
            for (std::size_t i2 = 0; i2 < n_labels; ++i2)
                for (std::size_t j = i2 + 1; j < n_labels; ++j) {
                    const auto& a =
                        std::min(label_scratch_[i2], label_scratch_[j]);
                    const auto& b =
                        std::max(label_scratch_[i2], label_scratch_[j]);
                    pair_label_.assign(a);
                    pair_label_ += '+';
                    pair_label_ += b;
                    cov.pairs.add(pair_label_);
                }
        }
    }
}

void Analyzer::consume_output(const CanonicalView& view) {
    report_.outputs[view.id].hist.add(
        output_parts_[view.id].label_for(view.event->ret));
}

}  // namespace iocov::core
