#include "core/combos.hpp"

#include <algorithm>

#include "abi/fcntl.hpp"

namespace iocov::core {
namespace {

bool is_access_mode(const std::string& name) {
    return name == "O_RDONLY" || name == "O_WRONLY" || name == "O_RDWR";
}

bool absorbed(const std::string& a, const std::string& b) {
    // decompose_open_flags() reports the composite flag only, so these
    // pairs can never be observed.
    const auto pair_is = [&](const char* x, const char* y) {
        return (a == x && b == y) || (a == y && b == x);
    };
    return pair_is("O_SYNC", "O_DSYNC") ||
           pair_is("O_TMPFILE", "O_DIRECTORY");
}

}  // namespace

std::vector<std::string> feasible_open_flag_pairs() {
    std::vector<std::string> names;
    for (const auto& info : abi::open_flag_table())
        names.emplace_back(info.name);
    std::vector<std::string> out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j) {
            const auto& a = std::min(names[i], names[j]);
            const auto& b = std::max(names[i], names[j]);
            if (is_access_mode(a) && is_access_mode(b)) continue;
            if (absorbed(a, b)) continue;
            out.push_back(a + "+" + b);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

PairCoverage open_flag_pair_coverage(const ArgCoverage& flags) {
    PairCoverage cov;
    const auto feasible = feasible_open_flag_pairs();
    cov.feasible = feasible.size();
    for (const auto& pair : feasible) {
        if (flags.pairs.count(pair) > 0) ++cov.tested;
        else cov.untested.push_back(pair);
    }
    cov.fraction = cov.feasible
                       ? static_cast<double>(cov.tested) /
                             static_cast<double>(cov.feasible)
                       : 0.0;
    return cov;
}

}  // namespace iocov::core
