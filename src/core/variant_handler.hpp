// Syscall variant handler.
//
// open/openat/creat/openat2 (and the other variant families) share a
// kernel implementation, so IOCov merges their input and output spaces.
// The handler maps a raw trace event onto its base syscall and fills in
// arguments a variant expresses implicitly: creat(2) implies
// O_CREAT|O_WRONLY|O_TRUNC, and fchdir(2) changes directory "via fd"
// rather than via a pathname.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/syscall_spec.hpp"
#include "trace/event.hpp"

namespace iocov::core {

/// A trace event normalized onto its base syscall.
struct CanonicalEvent {
    std::string base;       ///< e.g. "open"
    std::string variant;    ///< the syscall as invoked, e.g. "creat"
    trace::TraceEvent event;  ///< args rewritten to base-arg names

    /// Tracked-argument lookup against the normalized arg list.
    std::optional<trace::ArgValue> arg(std::string_view key) const;
};

/// Normalizes `event`; nullopt for syscalls outside the tracked 27.
std::optional<CanonicalEvent> canonicalize(const trace::TraceEvent& event);

/// Same, resolving variants against an arbitrary registry (e.g. the
/// extended registry that also tracks unlink/rename/fsync).
std::optional<CanonicalEvent> canonicalize(
    const trace::TraceEvent& event,
    const std::vector<SyscallSpec>& registry);

/// The argument a variant implies rather than carries — creat(2) implies
/// open's flags, fchdir(2) supplies its directory "via fd" instead of a
/// pathname.  Returns a pointer into static storage, or nullptr for
/// variants that carry all their arguments explicitly.  Shared by
/// canonicalize() and the analyzer's zero-copy hot path (SyscallTable)
/// so variant knowledge lives in one place.
const trace::Arg* implied_variant_arg(std::string_view variant);

/// A trace event normalized onto its base syscall *without* copying it:
/// the analyzer-hot-path counterpart of CanonicalEvent.  Canonicalizing
/// used to copy the whole TraceEvent (pathname strings and all) per
/// event; a view references the original event and patches in at most
/// the variant's implied argument.  Valid only while the event (and the
/// SyscallTable that resolved it) are alive.
struct CanonicalView {
    const SyscallSpec* spec = nullptr;      ///< base syscall spec
    std::size_t id = 0;                     ///< dense registry index
    const trace::TraceEvent* event = nullptr;
    const trace::Arg* implied = nullptr;    ///< variant's implied arg

    /// Tracked-argument lookup mirroring CanonicalEvent::arg(): the
    /// event's own args win, the implied arg fills the gap.  Returns a
    /// pointer instead of a copy (ArgValue may hold a std::string).
    const trace::ArgValue* find(std::string_view key) const {
        if (const trace::Arg* a = event->find_arg(key)) return &a->value;
        if (implied && implied->name == key) return &implied->value;
        return nullptr;
    }

    /// find() with a positional hint: traced args arrive in prototype
    /// order, so checking event->args[hint] first turns the common case
    /// into a single string compare instead of a scan.
    const trace::ArgValue* find_hinted(std::string_view key,
                                       std::size_t hint) const {
        if (hint < event->args.size() && event->args[hint].name == key)
            return &event->args[hint].value;
        return find(key);
    }
};

}  // namespace iocov::core
