// Syscall variant handler.
//
// open/openat/creat/openat2 (and the other variant families) share a
// kernel implementation, so IOCov merges their input and output spaces.
// The handler maps a raw trace event onto its base syscall and fills in
// arguments a variant expresses implicitly: creat(2) implies
// O_CREAT|O_WRONLY|O_TRUNC, and fchdir(2) changes directory "via fd"
// rather than via a pathname.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/syscall_spec.hpp"
#include "trace/event.hpp"

namespace iocov::core {

/// A trace event normalized onto its base syscall.
struct CanonicalEvent {
    std::string base;       ///< e.g. "open"
    std::string variant;    ///< the syscall as invoked, e.g. "creat"
    trace::TraceEvent event;  ///< args rewritten to base-arg names

    /// Tracked-argument lookup against the normalized arg list.
    std::optional<trace::ArgValue> arg(std::string_view key) const;
};

/// Normalizes `event`; nullopt for syscalls outside the tracked 27.
std::optional<CanonicalEvent> canonicalize(const trace::TraceEvent& event);

/// Same, resolving variants against an arbitrary registry (e.g. the
/// extended registry that also tracks unlink/rename/fsync).
std::optional<CanonicalEvent> canonicalize(
    const trace::TraceEvent& event,
    const std::vector<SyscallSpec>& registry);

}  // namespace iocov::core
