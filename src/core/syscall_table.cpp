#include "core/syscall_table.hpp"

namespace iocov::core {

SyscallTable::SyscallTable(const std::vector<SyscallSpec>& registry)
    : registry_(&registry) {
    arg_offset_.reserve(registry.size() + 1);
    std::size_t slot = 0;
    std::size_t variant_count = 0;
    for (const auto& spec : registry) variant_count += spec.variants.size();
    variants_.reserve(variant_count);
    for (SyscallId id = 0; id < registry.size(); ++id) {
        const auto& spec = registry[id];
        arg_offset_.push_back(slot);
        slot += spec.args.size();
        for (const auto& variant : spec.variants)
            variants_.emplace(variant,
                              VariantEntry{id, implied_variant_arg(variant)});
    }
    arg_offset_.push_back(slot);
}

std::size_t SyscallTable::arg_slot(std::string_view base,
                                   std::string_view key) const {
    for (SyscallId id = 0; id < registry_->size(); ++id) {
        const auto& spec = (*registry_)[id];
        if (spec.base != base) continue;
        for (std::size_t i = 0; i < spec.args.size(); ++i)
            if (spec.args[i].key == key) return arg_offset_[id] + i;
    }
    return npos;
}

}  // namespace iocov::core
