#include "core/diff.hpp"

#include <algorithm>
#include <sstream>

namespace iocov::core {
namespace {

void diff_hist(const stats::PartitionHistogram& before,
               const stats::PartitionHistogram& after, bool is_input,
               const std::string& base, const std::string& arg,
               const DiffOptions& options,
               std::vector<CoverageDelta>* out) {
    // Union of labels, before-order first.
    std::vector<std::string> labels;
    for (const auto& row : before.rows()) labels.push_back(row.label);
    for (const auto& row : after.rows())
        if (!before.has_partition(row.label)) labels.push_back(row.label);

    for (const auto& label : labels) {
        const std::uint64_t b = before.count(label);
        const std::uint64_t a = after.count(label);
        if (b == a) continue;
        CoverageDelta d;
        d.is_input = is_input;
        d.base = base;
        d.arg = arg;
        d.partition = label;
        d.before = b;
        d.after = a;
        if (b > 0 && a == 0) {
            d.kind = CoverageDelta::Kind::Lost;
        } else if (b == 0 && a > 0) {
            d.kind = CoverageDelta::Kind::Gained;
        } else {
            const double lo = static_cast<double>(std::min(a, b));
            const double hi = static_cast<double>(std::max(a, b));
            if ((hi - lo) / hi < options.ratio_threshold) continue;
            d.kind = a < b ? CoverageDelta::Kind::Decreased
                           : CoverageDelta::Kind::Increased;
        }
        out->push_back(std::move(d));
    }
}

int severity(CoverageDelta::Kind kind) {
    switch (kind) {
        case CoverageDelta::Kind::Lost: return 0;
        case CoverageDelta::Kind::Decreased: return 1;
        case CoverageDelta::Kind::Gained: return 2;
        case CoverageDelta::Kind::Increased: return 3;
    }
    return 4;
}

}  // namespace

std::vector<CoverageDelta> diff_reports(const CoverageReport& before,
                                        const CoverageReport& after,
                                        const DiffOptions& options) {
    std::vector<CoverageDelta> out;
    for (const auto& in : before.inputs) {
        const auto* other = after.find_input(in.base, in.key);
        if (!other) continue;
        diff_hist(in.hist, other->hist, true, in.base, in.key, options,
                  &out);
    }
    for (const auto& oc : before.outputs) {
        const auto* other = after.find_output(oc.base);
        if (!other) continue;
        diff_hist(oc.hist, other->hist, false, oc.base, "", options, &out);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const CoverageDelta& a, const CoverageDelta& b) {
                         return severity(a.kind) < severity(b.kind);
                     });
    return out;
}

bool has_coverage_regression(const CoverageReport& before,
                             const CoverageReport& after) {
    const auto deltas = diff_reports(before, after);
    return std::any_of(deltas.begin(), deltas.end(),
                       [](const CoverageDelta& d) {
                           return d.kind == CoverageDelta::Kind::Lost;
                       });
}

std::string delta_kind_name(CoverageDelta::Kind kind) {
    switch (kind) {
        case CoverageDelta::Kind::Lost: return "LOST";
        case CoverageDelta::Kind::Gained: return "gained";
        case CoverageDelta::Kind::Decreased: return "decreased";
        case CoverageDelta::Kind::Increased: return "increased";
    }
    return "?";
}

// ---- file-system state diffing ------------------------------------------

namespace {

StateDelta make_delta(StateDelta::Kind kind, const std::string& path,
                      std::string detail) {
    StateDelta d;
    d.kind = kind;
    d.path = path;
    d.detail = std::move(detail);
    return d;
}

}  // namespace

std::string StateDelta::to_string() const {
    std::string out = "[";
    out += state_delta_kind_name(kind);
    out += "] ";
    out += path;
    if (!detail.empty()) {
        out += ": ";
        out += detail;
    }
    return out;
}

std::vector<StateDelta> diff_states(const StateSnapshot& expected,
                                    const StateSnapshot& actual,
                                    const StateDiffOptions& options) {
    std::vector<StateDelta> out;
    for (const auto& [path, want] : expected.entries) {
        auto it = actual.entries.find(path);
        if (it == actual.entries.end()) {
            out.push_back(make_delta(StateDelta::Kind::Missing, path,
                                     std::string("expected ") +
                                         state_fact_type_name(want.type)));
            continue;
        }
        const StateFact& got = it->second;
        if (want.type != got.type) {
            std::ostringstream os;
            os << "expected " << state_fact_type_name(want.type) << ", found "
               << state_fact_type_name(got.type);
            out.push_back(make_delta(StateDelta::Kind::TypeMismatch, path,
                                     os.str()));
            continue;  // other aspects are meaningless across types
        }
        if (want.check_data && want.type == StateFact::Type::File) {
            if (want.size != got.size) {
                std::ostringstream os;
                os << "size " << want.size << " -> " << got.size;
                out.push_back(make_delta(StateDelta::Kind::DataLoss, path,
                                         os.str()));
            } else if (want.content_hash != got.content_hash) {
                out.push_back(make_delta(StateDelta::Kind::DataLoss, path,
                                         "content diverged"));
            }
        }
        if (want.check_meta) {
            std::ostringstream os;
            bool lost = false;
            if (want.mode != got.mode) {
                os << "mode " << std::oct << want.mode << " -> " << got.mode
                   << std::dec << "; ";
                lost = true;
            }
            if (want.uid != got.uid || want.gid != got.gid) {
                os << "owner " << want.uid << ':' << want.gid << " -> "
                   << got.uid << ':' << got.gid << "; ";
                lost = true;
            }
            if (want.xattr_hash != got.xattr_hash) {
                os << "xattrs diverged; ";
                lost = true;
            }
            if (want.symlink_target != got.symlink_target) {
                os << "target \"" << want.symlink_target << "\" -> \""
                   << got.symlink_target << "\"; ";
                lost = true;
            }
            if (lost) {
                std::string detail = os.str();
                detail.resize(detail.size() - 2);  // drop trailing "; "
                out.push_back(make_delta(StateDelta::Kind::MetadataLoss, path,
                                         std::move(detail)));
            }
        }
    }
    if (!options.allow_extra) {
        for (const auto& [path, got] : actual.entries) {
            if (!expected.entries.count(path))
                out.push_back(
                    make_delta(StateDelta::Kind::Extra, path,
                               std::string("unexpected ") +
                                   state_fact_type_name(got.type)));
        }
    }
    return out;
}

const char* state_delta_kind_name(StateDelta::Kind kind) {
    switch (kind) {
        case StateDelta::Kind::Missing: return "missing";
        case StateDelta::Kind::TypeMismatch: return "type-mismatch";
        case StateDelta::Kind::DataLoss: return "data-loss";
        case StateDelta::Kind::MetadataLoss: return "metadata-loss";
        case StateDelta::Kind::Extra: return "extra";
    }
    return "?";
}

const char* state_fact_type_name(StateFact::Type type) {
    switch (type) {
        case StateFact::Type::File: return "file";
        case StateFact::Type::Dir: return "dir";
        case StateFact::Type::Symlink: return "symlink";
        case StateFact::Type::Special: return "special";
    }
    return "?";
}

}  // namespace iocov::core
