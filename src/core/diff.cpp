#include "core/diff.hpp"

#include <algorithm>

namespace iocov::core {
namespace {

void diff_hist(const stats::PartitionHistogram& before,
               const stats::PartitionHistogram& after, bool is_input,
               const std::string& base, const std::string& arg,
               const DiffOptions& options,
               std::vector<CoverageDelta>* out) {
    // Union of labels, before-order first.
    std::vector<std::string> labels;
    for (const auto& row : before.rows()) labels.push_back(row.label);
    for (const auto& row : after.rows())
        if (!before.has_partition(row.label)) labels.push_back(row.label);

    for (const auto& label : labels) {
        const std::uint64_t b = before.count(label);
        const std::uint64_t a = after.count(label);
        if (b == a) continue;
        CoverageDelta d;
        d.is_input = is_input;
        d.base = base;
        d.arg = arg;
        d.partition = label;
        d.before = b;
        d.after = a;
        if (b > 0 && a == 0) {
            d.kind = CoverageDelta::Kind::Lost;
        } else if (b == 0 && a > 0) {
            d.kind = CoverageDelta::Kind::Gained;
        } else {
            const double lo = static_cast<double>(std::min(a, b));
            const double hi = static_cast<double>(std::max(a, b));
            if ((hi - lo) / hi < options.ratio_threshold) continue;
            d.kind = a < b ? CoverageDelta::Kind::Decreased
                           : CoverageDelta::Kind::Increased;
        }
        out->push_back(std::move(d));
    }
}

int severity(CoverageDelta::Kind kind) {
    switch (kind) {
        case CoverageDelta::Kind::Lost: return 0;
        case CoverageDelta::Kind::Decreased: return 1;
        case CoverageDelta::Kind::Gained: return 2;
        case CoverageDelta::Kind::Increased: return 3;
    }
    return 4;
}

}  // namespace

std::vector<CoverageDelta> diff_reports(const CoverageReport& before,
                                        const CoverageReport& after,
                                        const DiffOptions& options) {
    std::vector<CoverageDelta> out;
    for (const auto& in : before.inputs) {
        const auto* other = after.find_input(in.base, in.key);
        if (!other) continue;
        diff_hist(in.hist, other->hist, true, in.base, in.key, options,
                  &out);
    }
    for (const auto& oc : before.outputs) {
        const auto* other = after.find_output(oc.base);
        if (!other) continue;
        diff_hist(oc.hist, other->hist, false, oc.base, "", options, &out);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const CoverageDelta& a, const CoverageDelta& b) {
                         return severity(a.kind) < severity(b.kind);
                     });
    return out;
}

bool has_coverage_regression(const CoverageReport& before,
                             const CoverageReport& after) {
    const auto deltas = diff_reports(before, after);
    return std::any_of(deltas.begin(), deltas.end(),
                       [](const CoverageDelta& d) {
                           return d.kind == CoverageDelta::Kind::Lost;
                       });
}

std::string delta_kind_name(CoverageDelta::Kind kind) {
    switch (kind) {
        case CoverageDelta::Kind::Lost: return "LOST";
        case CoverageDelta::Kind::Gained: return "gained";
        case CoverageDelta::Kind::Decreased: return "decreased";
        case CoverageDelta::Kind::Increased: return "increased";
    }
    return "?";
}

}  // namespace iocov::core
