// Coverage data model and the analyzer that fills it from a trace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "core/syscall_spec.hpp"
#include "core/syscall_table.hpp"
#include "core/variant_handler.hpp"
#include "stats/histogram.hpp"
#include "trace/event.hpp"

namespace iocov::core {

/// Input coverage for one tracked argument of one base syscall.
struct ArgCoverage {
    std::string base;
    std::string key;
    ArgClass cls = ArgClass::Numeric;

    /// Frequency per partition (Fig. 2 / Fig. 3 of the paper).
    stats::PartitionHistogram hist;

    // Bitmap extras (populated only for the open-flags argument):
    /// How many flags were combined per call — Table 1, "all flags" row.
    stats::PartitionHistogram combo_cardinality;
    /// Same, restricted to calls that include O_RDONLY — Table 1 row 2.
    stats::PartitionHistogram combo_cardinality_rdonly;
    /// Unordered flag pairs seen together ("O_CREAT+O_TRUNC") — the
    /// paper's future-work "bit combinations" extension.
    stats::PartitionHistogram pairs;

    friend bool operator==(const ArgCoverage&, const ArgCoverage&) = default;
};

/// Output coverage for one base syscall (Fig. 4).
struct OutputCoverage {
    std::string base;
    SuccessKind success = SuccessKind::Unit;
    stats::PartitionHistogram hist;

    friend bool operator==(const OutputCoverage&,
                           const OutputCoverage&) = default;
};

/// Everything IOCov measured over one trace.
struct CoverageReport {
    std::vector<ArgCoverage> inputs;     // 14 entries
    std::vector<OutputCoverage> outputs;  // 11 entries
    std::uint64_t events_seen = 0;     ///< events fed to the analyzer
    std::uint64_t events_tracked = 0;  ///< events in the tracked 27

    ArgCoverage* find_input(std::string_view base, std::string_view key);
    const ArgCoverage* find_input(std::string_view base,
                                  std::string_view key) const;
    OutputCoverage* find_output(std::string_view base);
    const OutputCoverage* find_output(std::string_view base) const;

    /// Merges another report (e.g. per-process shards) into this one.
    /// Histogram row order is canonical (see PartitionHistogram), so
    /// merging the same shard set in any order yields bit-identical
    /// reports — the property the parallel pipeline relies on.
    void merge(const CoverageReport& other);

    friend bool operator==(const CoverageReport&,
                           const CoverageReport&) = default;
};

/// Streams trace events into a CoverageReport.
class Analyzer {
  public:
    /// Tracks the paper's 27-syscall registry by default; pass
    /// extended_syscall_registry() (or a custom one) to widen tracking.
    explicit Analyzer(
        const std::vector<SyscallSpec>& registry = syscall_registry());

    /// Consumes one (already filtered) trace event.
    void consume(const trace::TraceEvent& event);

    /// Hot-path consume for callers that pre-resolved the event's
    /// syscall name via table().bind() (the binary pipeline resolves
    /// each interned name once per file instead of hashing per event).
    /// Must behave exactly like consume(); `binding` must be
    /// `table().bind(event.syscall)`.
    void consume(const trace::TraceEvent& event,
                 const SyscallTable::Binding& binding);

    /// Convenience over a whole buffer.
    void consume_all(const std::vector<trace::TraceEvent>& events);

    /// The name-interning table (for pre-binding via bind()).
    const SyscallTable& table() const { return table_; }

    /// Folds a shard's report into this analyzer's (used by the parallel
    /// pipeline after per-worker analysis).
    void merge_report(const CoverageReport& shard) { report_.merge(shard); }

    const CoverageReport& report() const { return report_; }
    CoverageReport take_report() { return std::move(report_); }

  private:
    void consume_input(const CanonicalView& view);
    void consume_output(const CanonicalView& view);

    CoverageReport report_;
    /// Variant names resolved once into dense indices; per event the
    /// analyzer does one hash lookup and then plain vector indexing
    /// (report_.inputs, input_parts_ and report_.outputs, output_parts_
    /// share the table's arg-slot / SyscallId numbering).
    SyscallTable table_;
    std::vector<std::unique_ptr<InputPartitioner>> input_parts_;
    std::vector<OutputPartitioner> output_parts_;
    /// Flat slot of open/flags, whose bitmap combination statistics are
    /// tracked beyond the plain histogram; npos if not in the registry.
    std::size_t open_flags_slot_ = SyscallTable::npos;
    /// Per-event scratch (labels and the "A+B" pair rendering) reused
    /// across consume() calls so the steady-state input path performs
    /// no heap allocation.
    LabelScratch label_scratch_;
    std::string pair_label_;
};

}  // namespace iocov::core
