#include "core/report_io.hpp"

#include <sstream>

namespace iocov::core {
namespace {

constexpr const char* kMagic = "# iocov-coverage v1";

void save_hist(std::ostream& os, const stats::PartitionHistogram& hist,
               const char* prefix = "") {
    for (const auto& row : hist.rows())
        os << "  " << prefix << row.label << ' ' << row.count << '\n';
}

std::string_view class_token(ArgClass cls) { return arg_class_name(cls); }

std::optional<ArgClass> class_from_token(std::string_view tok) {
    if (tok == "identifier") return ArgClass::Identifier;
    if (tok == "bitmap") return ArgClass::Bitmap;
    if (tok == "numeric") return ArgClass::Numeric;
    if (tok == "categorical") return ArgClass::Categorical;
    return std::nullopt;
}

std::string_view success_token(SuccessKind s) {
    switch (s) {
        case SuccessKind::Unit: return "Unit";
        case SuccessKind::ByteCount: return "ByteCount";
        case SuccessKind::Offset: return "Offset";
        case SuccessKind::NewFd: return "NewFd";
    }
    return "Unit";
}

std::optional<SuccessKind> success_from_token(std::string_view tok) {
    if (tok == "Unit") return SuccessKind::Unit;
    if (tok == "ByteCount") return SuccessKind::ByteCount;
    if (tok == "Offset") return SuccessKind::Offset;
    if (tok == "NewFd") return SuccessKind::NewFd;
    return std::nullopt;
}

}  // namespace

std::ostream& save_report(std::ostream& os, const CoverageReport& report) {
    os << kMagic << '\n';
    os << "events_seen " << report.events_seen << '\n';
    os << "events_tracked " << report.events_tracked << '\n';
    for (const auto& in : report.inputs) {
        os << "input " << in.base << ' ' << in.key << ' '
           << class_token(in.cls) << '\n';
        save_hist(os, in.hist);
        save_hist(os, in.combo_cardinality, "@combo ");
        save_hist(os, in.combo_cardinality_rdonly, "@combo_rdonly ");
        save_hist(os, in.pairs, "@pair ");
    }
    for (const auto& out : report.outputs) {
        os << "output " << out.base << ' ' << success_token(out.success)
           << '\n';
        save_hist(os, out.hist);
    }
    return os;
}

std::optional<CoverageReport> load_report(std::istream& in) {
    std::string line;
    if (!std::getline(in, line) || line != kMagic) return std::nullopt;

    CoverageReport report;
    ArgCoverage* cur_in = nullptr;
    OutputCoverage* cur_out = nullptr;

    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tok;
        if (!(ls >> tok)) continue;  // blank

        if (tok == "events_seen") {
            if (!(ls >> report.events_seen)) return std::nullopt;
        } else if (tok == "events_tracked") {
            if (!(ls >> report.events_tracked)) return std::nullopt;
        } else if (tok == "input") {
            ArgCoverage cov;
            std::string cls;
            if (!(ls >> cov.base >> cov.key >> cls)) return std::nullopt;
            auto parsed = class_from_token(cls);
            if (!parsed) return std::nullopt;
            cov.cls = *parsed;
            report.inputs.push_back(std::move(cov));
            cur_in = &report.inputs.back();
            cur_out = nullptr;
        } else if (tok == "output") {
            OutputCoverage cov;
            std::string succ;
            if (!(ls >> cov.base >> succ)) return std::nullopt;
            auto parsed = success_from_token(succ);
            if (!parsed) return std::nullopt;
            cov.success = *parsed;
            report.outputs.push_back(std::move(cov));
            cur_out = &report.outputs.back();
            cur_in = nullptr;
        } else if (tok == "@combo" || tok == "@combo_rdonly" ||
                   tok == "@pair") {
            if (!cur_in) return std::nullopt;
            std::string label;
            std::uint64_t count = 0;
            if (!(ls >> label >> count)) return std::nullopt;
            auto& hist = tok == "@combo" ? cur_in->combo_cardinality
                         : tok == "@combo_rdonly"
                             ? cur_in->combo_cardinality_rdonly
                             : cur_in->pairs;
            // declare() reproduces the saved row order exactly (add()
            // would re-sort labels into the canonical dynamic tail).
            hist.declare(label);
            if (count) hist.add(label, count);
        } else {
            // A partition row: "<label> <count>" for the current block.
            std::uint64_t count = 0;
            if (!(ls >> count)) return std::nullopt;
            stats::PartitionHistogram* hist =
                cur_in ? &cur_in->hist : cur_out ? &cur_out->hist : nullptr;
            if (!hist) return std::nullopt;
            hist->declare(tok);
            if (count) hist->add(tok, count);
        }
    }
    return report;
}

}  // namespace iocov::core
