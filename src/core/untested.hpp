// Untested-partition reporting: the actionable output of IOCov.
//
// The paper's headline empirical finding is that both CrashMonkey and
// xfstests leave many input and output partitions untested.  This module
// extracts those partitions from a CoverageReport and, for each, phrases
// a concrete test suggestion a suite developer can act on (e.g. "open a
// file with O_LARGEFILE", "drive write(2) into ENOSPC").
#pragma once

#include <string>
#include <vector>

#include "core/coverage.hpp"

namespace iocov::core {

struct UntestedPartition {
    enum class Kind : std::uint8_t { Input, Output };
    Kind kind = Kind::Input;
    std::string base;       ///< base syscall
    std::string arg;        ///< argument key (inputs only)
    std::string partition;  ///< the untested partition label
    std::string suggestion; ///< human-readable test idea
};

/// All untested partitions in a report, inputs first.
std::vector<UntestedPartition> find_untested(const CoverageReport& report);

/// Partitions tested fewer than `threshold` times (but at least once):
/// the "under-tested" set of the paper's over/under-testing discussion.
std::vector<UntestedPartition> find_under_tested(const CoverageReport& report,
                                                 std::uint64_t threshold);

/// Summary counts per base syscall: declared/tested/untested partitions.
struct CoverageSummaryRow {
    std::string base;
    std::string arg;  ///< empty for output rows
    std::size_t declared = 0;
    std::size_t tested = 0;
    double fraction = 0.0;
};

std::vector<CoverageSummaryRow> summarize(const CoverageReport& report);

}  // namespace iocov::core
