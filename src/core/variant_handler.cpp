#include "core/variant_handler.hpp"

#include "abi/fcntl.hpp"
#include "core/syscall_spec.hpp"

namespace iocov::core {

std::optional<trace::ArgValue> CanonicalEvent::arg(
    std::string_view key) const {
    const trace::Arg* a = event.find_arg(key);
    if (!a) return std::nullopt;
    return a->value;
}

const trace::Arg* implied_variant_arg(std::string_view variant) {
    // creat(path, mode) == open(path, O_CREAT|O_WRONLY|O_TRUNC, mode).
    static const trace::Arg kCreatFlags{
        "flags", trace::ArgValue{std::uint64_t{abi::O_CREAT | abi::O_WRONLY |
                                               abi::O_TRUNC}}};
    // fchdir's directory identifier arrives as an fd, not a pathname.
    static const trace::Arg kFchdirPath{
        "pathname", trace::ArgValue{std::string("<via-fd>")}};
    if (variant == "creat") return &kCreatFlags;
    if (variant == "fchdir") return &kFchdirPath;
    // openat2: mode/flags already present under the canonical names.
    return nullptr;
}

std::optional<CanonicalEvent> canonicalize(
    const trace::TraceEvent& event,
    const std::vector<SyscallSpec>& registry) {
    auto base = base_of_variant(event.syscall, registry);
    if (!base) return std::nullopt;

    CanonicalEvent out;
    out.base = *base;
    out.variant = event.syscall;
    out.event = event;
    if (const trace::Arg* implied = implied_variant_arg(event.syscall))
        out.event.args.push_back(*implied);
    return out;
}

std::optional<CanonicalEvent> canonicalize(const trace::TraceEvent& event) {
    return canonicalize(event, syscall_registry());
}

}  // namespace iocov::core
