// Structured gap reports: what a coverage report says to test next.
//
// A CoverageReport names which partitions a suite exercised; this module
// turns the complement into data a synthesizer can act on.  A Gap is one
// untested partition (input or output) annotated with its share of the
// TCD deviation for its space, so callers can rank gaps by how much
// closing each one would move the metric.  extract_gaps() is the
// measure half of the guide loop (testers/guided); the synthesize half
// maps each Gap to a concrete syscall recipe.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/coverage.hpp"

namespace iocov::core {

/// One untested partition, ranked by TCD contribution.
struct Gap {
    enum class Kind : std::uint8_t { Input, Output };
    Kind kind = Kind::Input;
    std::string base;        ///< base syscall ("open", "write", ...)
    std::string arg;         ///< argument key (inputs only; empty for outputs)
    std::string partition;   ///< the untested partition label
    std::string suggestion;  ///< human-readable test idea (from core/untested)
    /// This partition's share of the squared TCD deviation for its
    /// space, against the uniform target the gaps were extracted with.
    double tcd_share = 0.0;

    /// "base.arg:partition" for inputs, "base:partition" for outputs.
    std::string id() const;
};

/// Per-space TCD snapshot (one input-argument or output space).
struct SpaceTcd {
    std::string base;
    std::string arg;  ///< empty for output spaces
    double tcd = 0.0;
    std::size_t untested = 0;  ///< partitions at count 0
    std::size_t declared = 0;  ///< total partitions in the space
};

/// Everything extract_gaps() learns from one report.
struct GapReport {
    std::vector<Gap> input_gaps;   ///< untested input partitions
    std::vector<Gap> output_gaps;  ///< unreached output partitions
    std::vector<SpaceTcd> spaces;  ///< per-space TCD, report order
    double target = 0.0;           ///< uniform target used throughout
    /// Mean of the per-space TCDs — the scalar the guide loop drives
    /// down.  Comparable across reports only for the same target.
    double aggregate_tcd = 0.0;

    std::size_t total_gaps() const {
        return input_gaps.size() + output_gaps.size();
    }

    /// Multi-line human-readable summary.
    std::string to_string() const;
};

/// Extracts every untested partition from `report`, with per-space TCD
/// against a uniform `target` and per-gap deviation shares.  Within a
/// space, gaps are ordered by descending TCD share (label-tie-broken),
/// i.e. the order tcd_attribution() ranks them; spaces follow report
/// order.  Every returned gap has count 0 in `report`, and every
/// count-0 partition of `report` is returned.
GapReport extract_gaps(const CoverageReport& report, double target);

}  // namespace iocov::core
