// Interned syscall registry lookup for the analyzer hot path.
//
// The registry is a vector of specs whose natural lookups are linear
// scans over strings (base_of_variant, find_spec) — fine for tooling,
// too slow to run once per traced event.  A SyscallTable resolves the
// registry once into dense indices:
//
//   * every base syscall gets a SyscallId (its registry index),
//   * every tracked argument gets a flat "arg slot" (bases contribute
//     their args in registry order, matching CoverageReport::inputs),
//   * every variant name maps, via one hash lookup, to its base's spec,
//     id, and implied argument.
//
// The Analyzer then indexes plain std::vectors per event instead of
// building "base/key" strings and probing std::maps.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/syscall_spec.hpp"
#include "core/variant_handler.hpp"
#include "trace/event.hpp"

namespace iocov::core {

/// Dense index of a base syscall within its registry.
using SyscallId = std::size_t;

class SyscallTable {
  public:
    /// `registry` must outlive the table (registries are static in
    /// practice; a custom one must outlive any Analyzer built on it).
    explicit SyscallTable(const std::vector<SyscallSpec>& registry);

    const std::vector<SyscallSpec>& registry() const { return *registry_; }
    std::size_t base_count() const { return registry_->size(); }

    /// First flat arg slot of base `id`; its args occupy
    /// [arg_offset(id), arg_offset(id) + spec.args.size()).
    std::size_t arg_offset(SyscallId id) const { return arg_offset_[id]; }

    /// Total tracked arguments across the registry (== the size of
    /// CoverageReport::inputs built from it).
    std::size_t arg_slot_count() const { return arg_offset_.back(); }

    /// Flat slot of (base, key); npos when the base has no such arg.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t arg_slot(std::string_view base, std::string_view key) const;

    /// Resolves one event onto its base syscall without copying it;
    /// nullopt for untracked syscalls.  One hash lookup per event.
    std::optional<CanonicalView> resolve(const trace::TraceEvent& event) const {
        auto it = variants_.find(event.syscall);
        if (it == variants_.end()) return std::nullopt;
        const VariantEntry& ve = it->second;
        return CanonicalView{&(*registry_)[ve.id], ve.id, &event, ve.implied};
    }

    /// A variant name resolved ahead of time.  The binary pipeline
    /// interns syscall names in its string table, so it resolves each
    /// *name* once per trace file (bind) instead of hashing once per
    /// event (resolve); `tracked == false` marks untracked names.
    struct Binding {
        bool tracked = false;
        SyscallId id = 0;
        const SyscallSpec* spec = nullptr;
        const trace::Arg* implied = nullptr;
    };

    Binding bind(std::string_view variant_name) const {
        auto it = variants_.find(variant_name);
        if (it == variants_.end()) return {};
        const VariantEntry& ve = it->second;
        return {true, ve.id, &(*registry_)[ve.id], ve.implied};
    }

    /// Dense binding for a whole IOCT string table: out[i] ==
    /// bind(strings[i]).  The batched decoder then resolves each event
    /// by plain vector index on its interned name id — zero hashing per
    /// event.
    std::vector<Binding> bind_all(
        const std::vector<std::string_view>& strings) const {
        std::vector<Binding> out;
        out.reserve(strings.size());
        for (const auto sv : strings) out.push_back(bind(sv));
        return out;
    }

    /// The view `resolve(event)` would produce, given the event's name
    /// was pre-bound.  `binding` must be tracked and come from this
    /// table; `event.syscall` must equal the bound name.
    static CanonicalView view(const Binding& binding,
                              const trace::TraceEvent& event) {
        return CanonicalView{binding.spec, binding.id, &event,
                             binding.implied};
    }

  private:
    struct VariantEntry {
        SyscallId id = 0;
        const trace::Arg* implied = nullptr;  // static storage
    };

    /// Transparent hash so bind() takes string_views (string-table
    /// entries aliasing an mmap) without a temporary std::string.
    struct NameHash {
        using is_transparent = void;
        std::size_t operator()(std::string_view s) const {
            return std::hash<std::string_view>{}(s);
        }
    };

    const std::vector<SyscallSpec>* registry_;
    std::unordered_map<std::string, VariantEntry, NameHash, std::equal_to<>>
        variants_;
    std::vector<std::size_t> arg_offset_;  // base_count() + 1 entries
};

}  // namespace iocov::core
