#include "core/partition.hpp"

#include <array>

#include "abi/fcntl.hpp"
#include "abi/limits.hpp"
#include "abi/seek.hpp"
#include "abi/stat_mode.hpp"
#include "abi/xattr.hpp"
#include "stats/log_bucket.hpp"

namespace iocov::core {
namespace {

using stats::bucket_label;
using stats::log_bucket_of;

std::int64_t as_int(const trace::ArgValue& v) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
    if (const auto* u = std::get_if<std::uint64_t>(&v))
        return static_cast<std::int64_t>(*u);
    return 0;
}

std::uint64_t as_uint(const trace::ArgValue& v) {
    if (const auto* u = std::get_if<std::uint64_t>(&v)) return *u;
    if (const auto* i = std::get_if<std::int64_t>(&v))
        return static_cast<std::uint64_t>(*i);
    return 0;
}

// ---- bitmap: open flags ---------------------------------------------------

class OpenFlagsPartitioner final : public InputPartitioner {
  public:
    std::vector<std::string> declared() const override {
        std::vector<std::string> out;
        for (const auto& info : abi::open_flag_table())
            out.emplace_back(info.name);
        return out;
    }
    void labels_into(const trace::ArgValue& value,
                     LabelScratch& out) const override {
        std::string_view names[abi::kMaxOpenFlagLabels];
        const std::size_t n = abi::decompose_open_flags(
            static_cast<std::uint32_t>(as_uint(value)), names,
            abi::kMaxOpenFlagLabels);
        for (std::size_t i = 0; i < n; ++i) out.push(names[i]);
    }
};

// ---- bitmap: mode/permission bits ------------------------------------------

class ModeBitsPartitioner final : public InputPartitioner {
  public:
    std::vector<std::string> declared() const override {
        std::vector<std::string> out;
        for (const auto& [bits, name] : kBits) out.emplace_back(name);
        out.emplace_back("none");
        return out;
    }
    void labels_into(const trace::ArgValue& value,
                     LabelScratch& out) const override {
        const auto mode =
            static_cast<abi::mode_t_>(as_uint(value)) & abi::MODE_PERM_MASK;
        const std::size_t before = out.size();
        for (const auto& [bits, name] : kBits)
            if (mode & bits) out.push(name);
        if (out.size() == before) out.push("none");
    }

  private:
    static constexpr std::array<std::pair<abi::mode_t_, const char*>, 12>
        kBits = {{
            {abi::S_ISUID, "S_ISUID"},
            {abi::S_ISGID, "S_ISGID"},
            {abi::S_ISVTX, "S_ISVTX"},
            {abi::S_IRUSR, "S_IRUSR"},
            {abi::S_IWUSR, "S_IWUSR"},
            {abi::S_IXUSR, "S_IXUSR"},
            {abi::S_IRGRP, "S_IRGRP"},
            {abi::S_IWGRP, "S_IWGRP"},
            {abi::S_IXGRP, "S_IXGRP"},
            {abi::S_IROTH, "S_IROTH"},
            {abi::S_IWOTH, "S_IWOTH"},
            {abi::S_IXOTH, "S_IXOTH"},
        }};
};

// ---- numeric ---------------------------------------------------------------

class NumericPartitioner final : public InputPartitioner {
  public:
    std::vector<std::string> declared() const override {
        std::vector<std::string> out;
        out.emplace_back("<0");
        out.emplace_back("=0");
        for (unsigned e = 0; e <= kNumericDeclaredMaxExp; ++e)
            out.push_back("2^" + std::to_string(e));
        return out;
    }
    void labels_into(const trace::ArgValue& value,
                     LabelScratch& out) const override {
        // bucket_label renders at most "2^63" — SSO, no allocation.
        out.push(bucket_label(log_bucket_of(as_int(value))));
    }
};

// ---- categorical ------------------------------------------------------------

class WhencePartitioner final : public InputPartitioner {
  public:
    std::vector<std::string> declared() const override {
        std::vector<std::string> out;
        for (int w : abi::seek_whence_values())
            out.push_back(*abi::seek_whence_name(w));
        out.emplace_back("INVALID");
        return out;
    }
    void labels_into(const trace::ArgValue& value,
                     LabelScratch& out) const override {
        auto name = abi::seek_whence_name(static_cast<int>(as_int(value)));
        out.push(name ? std::string_view(*name)
                      : std::string_view("INVALID"));
    }
};

class XattrFlagsPartitioner final : public InputPartitioner {
  public:
    std::vector<std::string> declared() const override {
        return {"0", "XATTR_CREATE", "XATTR_REPLACE", "INVALID"};
    }
    void labels_into(const trace::ArgValue& value,
                     LabelScratch& out) const override {
        switch (as_int(value)) {
            case 0: out.push("0"); break;
            case abi::XATTR_CREATE_: out.push("XATTR_CREATE"); break;
            case abi::XATTR_REPLACE_: out.push("XATTR_REPLACE"); break;
            default: out.push("INVALID"); break;
        }
    }
};

// ---- identifiers -------------------------------------------------------------

class FdPartitioner final : public InputPartitioner {
  public:
    std::vector<std::string> declared() const override {
        return {"stdio(0-2)", "valid(>=3)",   "large(>=1024)",
                "minus-one",  "AT_FDCWD",     "other-negative"};
    }
    void labels_into(const trace::ArgValue& value,
                     LabelScratch& out) const override {
        const std::int64_t fd = as_int(value);
        if (fd >= 0 && fd <= 2) out.push("stdio(0-2)");
        else if (fd >= 1024) out.push("large(>=1024)");
        else if (fd >= 3) out.push("valid(>=3)");
        else if (fd == -1) out.push("minus-one");
        else if (fd == abi::AT_FDCWD) out.push("AT_FDCWD");
        else out.push("other-negative");
    }
};

class PathPartitioner final : public InputPartitioner {
  public:
    std::vector<std::string> declared() const override {
        return {"absolute",  "relative",      "dot",
                "dotdot",    "trailing-slash", "contains-symlinkish",
                "name-max",  "path-max",       "via-fd",
                "faulting",  "empty"};
    }
    void labels_into(const trace::ArgValue& value,
                     LabelScratch& out) const override {
        const auto* s = std::get_if<std::string>(&value);
        if (!s) {
            out.push("faulting");
            return;
        }
        const std::string& p = *s;
        if (p == "<fault>") {
            out.push("faulting");
            return;
        }
        if (p == "<via-fd>") {
            out.push("via-fd");
            return;
        }
        if (p.empty()) {
            out.push("empty");
            return;
        }
        if (p == "." || p.starts_with("./")) out.push("dot");
        if (p == ".." || p.starts_with("../")) out.push("dotdot");
        out.push(p.front() == '/' ? "absolute" : "relative");
        if (p.size() > 1 && p.back() == '/') out.push("trailing-slash");
        // Longest component length and whole-path length boundaries.
        std::size_t comp = 0, longest = 0;
        for (char ch : p) {
            if (ch == '/') {
                longest = std::max(longest, comp);
                comp = 0;
            } else {
                ++comp;
            }
        }
        longest = std::max(longest, comp);
        if (longest > abi::NAME_MAX_) out.push("name-max");
        if (p.size() >= abi::PATH_MAX_) out.push("path-max");
    }
};

}  // namespace

std::unique_ptr<InputPartitioner> make_input_partitioner(
    std::string_view base, const ArgSpec& arg) {
    switch (arg.cls) {
        case ArgClass::Bitmap:
            if (base == "open" && arg.key == "flags")
                return std::make_unique<OpenFlagsPartitioner>();
            return std::make_unique<ModeBitsPartitioner>();
        case ArgClass::Numeric:
            return std::make_unique<NumericPartitioner>();
        case ArgClass::Categorical:
            if (base == "setxattr")
                return std::make_unique<XattrFlagsPartitioner>();
            return std::make_unique<WhencePartitioner>();
        case ArgClass::Identifier:
            if (arg.key == "fd") return std::make_unique<FdPartitioner>();
            return std::make_unique<PathPartitioner>();
    }
    return std::make_unique<NumericPartitioner>();
}

// ---- outputs -------------------------------------------------------------

std::string ok_label() { return "OK"; }

std::string ok_size_label(std::int64_t ret) {
    return "OK:" + bucket_label(log_bucket_of(ret));
}

OutputPartitioner::OutputPartitioner(SuccessKind success,
                                     std::vector<abi::Err> errors)
    : success_(success), errors_(std::move(errors)) {}

std::vector<std::string> OutputPartitioner::declared() const {
    std::vector<std::string> out;
    switch (success_) {
        case SuccessKind::Unit:
        case SuccessKind::NewFd:
            out.push_back(ok_label());
            break;
        case SuccessKind::ByteCount:
        case SuccessKind::Offset:
            out.emplace_back("OK:=0");
            for (unsigned e = 0; e <= kNumericDeclaredMaxExp; ++e)
                out.push_back("OK:2^" + std::to_string(e));
            break;
    }
    for (abi::Err e : errors_) out.push_back(abi::err_name(e));
    return out;
}

std::string OutputPartitioner::label_for(std::int64_t ret) const {
    if (ret >= 0) {
        switch (success_) {
            case SuccessKind::Unit:
            case SuccessKind::NewFd:
                return ok_label();
            case SuccessKind::ByteCount:
            case SuccessKind::Offset:
                return ok_size_label(ret);
        }
    }
    return abi::err_name(abi::err_of(ret));
}

}  // namespace iocov::core
