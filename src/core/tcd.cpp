#include "core/tcd.hpp"

#include <cassert>

#include "stats/rmsd.hpp"

namespace iocov::core {

double tcd(const stats::PartitionHistogram& hist,
           const std::vector<double>& target) {
    assert(target.size() == hist.partition_count());
    std::vector<double> logf, logt;
    logf.reserve(target.size());
    logt.reserve(target.size());
    const auto& rows = hist.rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        logf.push_back(stats::safe_log10(static_cast<double>(rows[i].count)));
        logt.push_back(stats::safe_log10(target[i]));
    }
    return stats::rmsd(logf, logt);
}

double tcd_uniform(const stats::PartitionHistogram& hist, double target) {
    return tcd(hist,
               std::vector<double>(hist.partition_count(), target));
}

double tcd_linear(const stats::PartitionHistogram& hist,
                  const std::vector<double>& target) {
    assert(target.size() == hist.partition_count());
    std::vector<double> f, t;
    f.reserve(target.size());
    t.reserve(target.size());
    const auto& rows = hist.rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        f.push_back(static_cast<double>(rows[i].count));
        t.push_back(target[i]);
    }
    return stats::rmsd(f, t);
}

double tcd_linear_uniform(const stats::PartitionHistogram& hist,
                          double target) {
    return tcd_linear(hist,
                      std::vector<double>(hist.partition_count(), target));
}

TargetBuilder::TargetBuilder(const stats::PartitionHistogram& hist,
                             double base)
    : hist_(hist), targets_(hist.partition_count(), base) {}

TargetBuilder& TargetBuilder::set(std::string_view label, double target) {
    const auto& rows = hist_.rows();
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (rows[i].label == label) targets_[i] = target;
    return *this;
}

TargetBuilder& TargetBuilder::boost(std::string_view label, double factor) {
    const auto& rows = hist_.rows();
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (rows[i].label == label) targets_[i] *= factor;
    return *this;
}

}  // namespace iocov::core
