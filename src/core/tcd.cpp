#include "core/tcd.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/rmsd.hpp"

namespace iocov::core {
namespace {

// Real check, not an assert: the default build defines NDEBUG, and a
// short target vector would otherwise read past its end.
void require_matching_size(const stats::PartitionHistogram& hist,
                           const std::vector<double>& target,
                           const char* who) {
    if (target.size() != hist.partition_count())
        throw std::invalid_argument(
            std::string(who) + ": target has " +
            std::to_string(target.size()) + " entries for " +
            std::to_string(hist.partition_count()) + " partitions");
}

}  // namespace

double tcd(const stats::PartitionHistogram& hist,
           const std::vector<double>& target) {
    require_matching_size(hist, target, "tcd");
    std::vector<double> logf, logt;
    logf.reserve(target.size());
    logt.reserve(target.size());
    const auto& rows = hist.rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        logf.push_back(stats::safe_log10(static_cast<double>(rows[i].count)));
        logt.push_back(stats::safe_log10(target[i]));
    }
    return stats::rmsd(logf, logt);
}

double tcd_uniform(const stats::PartitionHistogram& hist, double target) {
    return tcd(hist,
               std::vector<double>(hist.partition_count(), target));
}

double tcd_linear(const stats::PartitionHistogram& hist,
                  const std::vector<double>& target) {
    require_matching_size(hist, target, "tcd_linear");
    std::vector<double> f, t;
    f.reserve(target.size());
    t.reserve(target.size());
    const auto& rows = hist.rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        f.push_back(static_cast<double>(rows[i].count));
        t.push_back(target[i]);
    }
    return stats::rmsd(f, t);
}

double tcd_linear_uniform(const stats::PartitionHistogram& hist,
                          double target) {
    return tcd_linear(hist,
                      std::vector<double>(hist.partition_count(), target));
}

std::vector<TcdContribution> tcd_attribution(
    const stats::PartitionHistogram& hist,
    const std::vector<double>& target) {
    require_matching_size(hist, target, "tcd_attribution");
    const auto& rows = hist.rows();
    std::vector<TcdContribution> out;
    out.reserve(rows.size());
    const double n = static_cast<double>(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const double d =
            stats::safe_log10(static_cast<double>(rows[i].count)) -
            stats::safe_log10(target[i]);
        out.push_back({rows[i].label, rows[i].count, target[i],
                       n == 0.0 ? 0.0 : d * d / n});
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TcdContribution& a, const TcdContribution& b) {
                         if (a.deviation != b.deviation)
                             return a.deviation > b.deviation;
                         return a.label < b.label;
                     });
    return out;
}

std::vector<TcdContribution> tcd_attribution_uniform(
    const stats::PartitionHistogram& hist, double target) {
    return tcd_attribution(
        hist, std::vector<double>(hist.partition_count(), target));
}

TargetBuilder::TargetBuilder(const stats::PartitionHistogram& hist,
                             double base)
    : hist_(hist), targets_(hist.partition_count(), base) {}

TargetBuilder& TargetBuilder::set(std::string_view label, double target) {
    const auto& rows = hist_.rows();
    bool matched = false;
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (rows[i].label == label) {
            targets_[i] = target;
            matched = true;
        }
    if (!matched) unknown_labels_.emplace_back(label);
    return *this;
}

TargetBuilder& TargetBuilder::boost(std::string_view label, double factor) {
    const auto& rows = hist_.rows();
    bool matched = false;
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (rows[i].label == label) {
            targets_[i] *= factor;
            matched = true;
        }
    if (!matched) unknown_labels_.emplace_back(label);
    return *this;
}

}  // namespace iocov::core
