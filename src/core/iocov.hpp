// IOCov facade: the public entry point of the library.
//
// Wires the three components of the paper's Section 3 pipeline —
// trace filter, syscall variant handler, input/output partitioner —
// behind one object:
//
//     iocov::core::IOCov iocov(
//         iocov::trace::FilterConfig::mount_point("/mnt/test"));
//     iocov.consume_all(buffer.events());
//     const auto& report = iocov.report();
//
// As in the real tool, the only knob a new file-system tester needs is
// the mount-point regular expression.
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <string_view>

#include "core/coverage.hpp"
#include "core/tcd.hpp"
#include "core/untested.hpp"
#include "trace/binary_format.hpp"
#include "trace/diagnostics.hpp"
#include "trace/filter.hpp"
#include "trace/sink.hpp"

namespace iocov::core {

/// Cumulative binary-ingest statistics across every consume_binary*
/// call on one IOCov (surfaced by `iocov analyze --stats`).
struct IngestStats {
    std::uint64_t events = 0;  ///< event records decoded (pre-filter)
    std::uint64_t bytes = 0;   ///< trace bytes ingested
    std::uint64_t files = 0;   ///< files analyzed (file/dir entry points)
    unsigned threads = 1;      ///< widest thread count used
    /// Heap allocations inside the steady-state decode -> filter ->
    /// analyze loops (stays 0 once histograms and scratch are warm;
    /// always 0 when exec::has_allocation_counting() is false).
    std::uint64_t hot_loop_allocs = 0;
    double seconds = 0;        ///< wall time spent in binary ingestion

    friend bool operator==(const IngestStats&, const IngestStats&) = default;
};

struct IOCovSnapshot;  // core/snapshot.hpp

class IOCov {
  public:
    /// `filter_config` selects the file system under test; the default
    /// matches the paper's xfstests setup (/mnt/test).  `registry`
    /// selects the tracked syscall set (pass
    /// extended_syscall_registry() for the future-work superset).
    explicit IOCov(trace::FilterConfig filter_config =
                       trace::FilterConfig::mount_point("/mnt/test"),
                   const std::vector<SyscallSpec>& registry =
                       syscall_registry());

    /// Feeds one raw trace event (filtering happens internally; events
    /// must arrive in trace order for fd tracking to work).
    void consume(const trace::TraceEvent& event);

    void consume_all(const std::vector<trace::TraceEvent>& events);

    /// Parses an LTTng-style text trace and analyzes it.
    /// Returns the number of malformed lines skipped.
    std::size_t consume_text(std::istream& in);

    /// Parallel consume_text: the trace is split into line chunks and
    /// parsed on a thread pool, events are re-sharded by pid, and each
    /// shard runs filter+analyze in its own worker before the shard
    /// reports merge back here.  The trace filter's state (watched fds,
    /// cwd) is keyed strictly by pid, so per-pid order — which sharding
    /// preserves — is all that determinism needs: on a fresh IOCov this
    /// produces a report bit-identical to consume_text.  Unlike the
    /// serial path, filter state does not carry across calls; analyze
    /// related traces in one call (or serially) if fds span files.
    /// `n_threads` 0 means hardware concurrency; 1 falls back to the
    /// serial path.  Returns the number of malformed lines skipped.
    std::size_t consume_text_parallel(std::istream& in,
                                      unsigned n_threads = 0);

    /// Analyzes an IOCT binary trace held in memory (typically an
    /// mmap'd file; see trace::MappedFile).  Events are decoded into a
    /// reusable scratch event — no per-event string materialization —
    /// and fed through the same filter + analyzer as consume_text, so
    /// the report is bit-identical to analyzing the equivalent text
    /// trace.  Returns the number of undecodable records dropped
    /// (torn tails and corrupt payloads), mirroring consume_text's
    /// malformed-line count.  A buffer that is not an IOCT file (bad
    /// magic/version) analyzes as empty with 0 dropped — callers that
    /// need to distinguish should sniff with trace::is_ioct first.
    std::size_t consume_binary(std::string_view data);

    /// Parallel consume_binary, mirroring consume_text_parallel: one
    /// structural scan locates record boundaries and pre-decodes pids,
    /// events are sharded by pid (the footer's per-pid counts pre-size
    /// the shards), and each shard decodes + filters + analyzes on its
    /// own worker before the reports merge.  Bit-identical to
    /// consume_binary on a fresh IOCov, with the same caveat as the
    /// text path: filter state does not carry across calls.
    std::size_t consume_binary_parallel(std::string_view data,
                                        unsigned n_threads = 0);

    /// Opens `path` (mmap with a read() fallback) and runs
    /// consume_binary / consume_binary_parallel on it.  `n_threads` 1
    /// is serial, 0 auto-detects hardware concurrency.  Returns nullopt
    /// when the file cannot be opened.
    std::optional<std::size_t> consume_binary_file(const std::string& path,
                                                   unsigned n_threads = 1);

    /// Result of a directory ingestion (consume_binary_dir).
    struct DirIngest {
        std::size_t files = 0;     ///< IOCT files analyzed
        std::size_t rejected = 0;  ///< entries skipped (not IOCT / unreadable)
        std::size_t dropped = 0;   ///< undecodable records across all files
        std::uint64_t bytes = 0;   ///< bytes analyzed
    };

    /// Analyzes every regular file in `dir` (sorted by name; not
    /// recursive).  Non-IOCT files are rejected with a per-file
    /// diagnostic, not an error — a trace directory routinely holds a
    /// README or checksum file.  Files are scheduled onto a
    /// work-stealing pool weighted by file size (`n_threads` 0 =
    /// hardware concurrency, 1 = serial); each file gets its own
    /// filter + analyzer — fd state never crosses files, exactly as if
    /// each file were a separate `iocov analyze` — and the per-file
    /// reports merge in name order, so the result is bit-identical to
    /// ingesting the files sequentially into per-file IOCovs and
    /// merging, regardless of thread count.  Returns nullopt when
    /// `dir` cannot be enumerated.
    std::optional<DirIngest> consume_binary_dir(const std::string& dir,
                                                unsigned n_threads = 1);

    /// Parses a syzkaller program/log and analyzes its *input* coverage
    /// (declarative programs carry no return values, so output coverage
    /// is unaffected).  Fuzzer programs run confined to their sandbox,
    /// so no mount-point filtering is applied.  Returns the number of
    /// syscall lines parsed.
    std::size_t consume_syz(std::istream& in);

    /// Folds another IOCov's coverage state into this one: report
    /// histograms merge row-wise, filtered/dropped/shard counters and
    /// IngestStats accumulate (see the accumulation contract below),
    /// and retained diagnostics fold under the usual first-K retention.
    /// Associative and commutative in the report — for any split of a
    /// workload into per-pid-ordered parts, merging the parts' IOCovs
    /// (in any order, any grouping) is bit-identical to one IOCov
    /// ingesting the whole workload.  `other`'s live filter state
    /// (watched fds, cwd) is NOT transferred: merge combines finished
    /// measurements, it does not splice mid-trace sessions.
    void merge(const IOCov& other);

    /// Same fold from a deserialized snapshot (see core/snapshot.hpp):
    /// merge(ingest(A).snapshot(), ingest(B).snapshot()) ==
    /// ingest(A+B).snapshot() bit-identically.  The snapshot's dropped
    /// count accumulates into diagnostics().total() count-only (the
    /// per-record reasons live with the original producer).
    void merge(const IOCovSnapshot& snapshot);

    /// Captures the full mergeable state as a snapshot value (report,
    /// filtered/dropped counters, ingest stats).  `label`/`timestamp`
    /// are left for the caller to stamp.  decode(encode(snapshot()))
    /// round-trips bit-identically.
    IOCovSnapshot snapshot() const;

    /// A sink that can be handed to a Kernel for live analysis.
    trace::TraceSink& live_sink() { return live_sink_; }

    const CoverageReport& report() const { return analyzer_.report(); }

    std::uint64_t events_filtered_out() const { return filtered_out_; }

    /// Where and why input was dropped, accumulated across every
    /// consume_* call: malformed text lines, corrupt IOCT records, and
    /// parallel chunks/shards lost to worker failures.  total() is the
    /// number the --max-errors budget is checked against.
    const trace::ParseDiagnostics& diagnostics() const {
        return diagnostics_;
    }

    /// Parallel chunks/shards whose worker failed outright (the events
    /// they held are counted into the dropped totals and diagnostics).
    /// A corrupt record never fails a shard — this counts isolation
    /// events, not parse errors.
    std::uint64_t shards_lost() const { return shards_lost_; }

    /// Cumulative binary-ingest throughput/allocation statistics.
    ///
    /// Accumulation contract (holds for diagnostics(), shards_lost()
    /// and events_filtered_out() too): an IOCov never self-resets.
    /// Every consume_* call and every merge() adds to the running
    /// totals — counters and `seconds` sum, `threads` keeps the widest
    /// value seen — so after any interleaving of N calls each total
    /// equals the sum of what the calls would have reported
    /// individually.  Snapshots inherit the same semantics: snapshot()
    /// captures the running totals, and merging a snapshot adds its
    /// totals in.  To measure one ingestion in isolation, use a fresh
    /// IOCov and subtract nothing.
    const IngestStats& ingest_stats() const { return ingest_stats_; }

  private:
    /// Kept beyond construction so the parallel path can build one
    /// fresh filter per shard from the same configuration.
    trace::FilterConfig filter_config_;
    const std::vector<SyscallSpec>* registry_;
    trace::TraceFilter filter_;
    Analyzer analyzer_;
    trace::CallbackSink live_sink_;
    std::uint64_t filtered_out_ = 0;
    trace::ParseDiagnostics diagnostics_;
    std::uint64_t shards_lost_ = 0;
    /// Serial-path decode scratch, persistent across consume_binary
    /// calls so repeated ingestion reuses warm capacity (the parallel
    /// paths keep per-shard/per-file locals instead).
    trace::EventBatch batch_;
    trace::EventScratch scratch_;
    IngestStats ingest_stats_;
};

}  // namespace iocov::core
