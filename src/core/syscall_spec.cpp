#include "core/syscall_spec.hpp"

namespace iocov::core {

using abi::Err;

std::string_view arg_class_name(ArgClass c) {
    switch (c) {
        case ArgClass::Identifier: return "identifier";
        case ArgClass::Bitmap: return "bitmap";
        case ArgClass::Numeric: return "numeric";
        case ArgClass::Categorical: return "categorical";
    }
    return "?";
}

const std::vector<SyscallSpec>& syscall_registry() {
    static const std::vector<SyscallSpec> kRegistry = {
        {"open",
         {"open", "openat", "creat", "openat2"},
         {{"flags", ArgClass::Bitmap}, {"mode", ArgClass::Bitmap}},
         SuccessKind::NewFd,
         abi::open_manpage_errors()},

        {"read",
         {"read", "pread64", "readv"},
         {{"count", ArgClass::Numeric}},
         SuccessKind::ByteCount,
         {Err::EAGAIN_, Err::EBADF_, Err::EFAULT_, Err::EINTR_, Err::EINVAL_,
          Err::EIO_, Err::EISDIR_, Err::ESPIPE_}},

        {"write",
         {"write", "pwrite64", "writev"},
         {{"count", ArgClass::Numeric}},
         SuccessKind::ByteCount,
         {Err::EAGAIN_, Err::EBADF_, Err::EDQUOT_, Err::EFAULT_, Err::EFBIG_,
          Err::EINTR_, Err::EINVAL_, Err::EIO_, Err::ENOSPC_, Err::EPERM_,
          Err::EPIPE_, Err::ESPIPE_}},

        {"lseek",
         {"lseek"},
         {{"offset", ArgClass::Numeric}, {"whence", ArgClass::Categorical}},
         SuccessKind::Offset,
         {Err::EBADF_, Err::EINVAL_, Err::ENXIO_, Err::EOVERFLOW_,
          Err::ESPIPE_}},

        {"truncate",
         {"truncate", "ftruncate"},
         {{"length", ArgClass::Numeric}},
         SuccessKind::Unit,
         {Err::EACCES_, Err::EBADF_, Err::EFAULT_, Err::EFBIG_, Err::EINTR_,
          Err::EINVAL_, Err::EIO_, Err::EISDIR_, Err::ELOOP_,
          Err::ENAMETOOLONG_, Err::ENOENT_, Err::ENOTDIR_, Err::EPERM_,
          Err::EROFS_, Err::ETXTBSY_}},

        {"mkdir",
         {"mkdir", "mkdirat"},
         {{"mode", ArgClass::Bitmap}},
         SuccessKind::Unit,
         {Err::EACCES_, Err::EBADF_, Err::EDQUOT_, Err::EEXIST_, Err::EFAULT_,
          Err::EINVAL_, Err::ELOOP_, Err::EMLINK_, Err::ENAMETOOLONG_,
          Err::ENOENT_, Err::ENOMEM_, Err::ENOSPC_, Err::ENOTDIR_,
          Err::EPERM_, Err::EROFS_}},

        {"chmod",
         {"chmod", "fchmod", "fchmodat"},
         {{"mode", ArgClass::Bitmap}},
         SuccessKind::Unit,
         {Err::EACCES_, Err::EBADF_, Err::EFAULT_, Err::EINVAL_, Err::EIO_,
          Err::ELOOP_, Err::ENAMETOOLONG_, Err::ENOENT_, Err::ENOMEM_,
          Err::ENOTDIR_, Err::EOPNOTSUPP_, Err::EPERM_, Err::EROFS_}},

        {"close",
         {"close"},
         {{"fd", ArgClass::Identifier}},
         SuccessKind::Unit,
         {Err::EBADF_, Err::EDQUOT_, Err::EINTR_, Err::EIO_, Err::ENOSPC_}},

        {"chdir",
         {"chdir", "fchdir"},
         {{"pathname", ArgClass::Identifier}},
         SuccessKind::Unit,
         {Err::EACCES_, Err::EBADF_, Err::EFAULT_, Err::EIO_, Err::ELOOP_,
          Err::ENAMETOOLONG_, Err::ENOENT_, Err::ENOMEM_, Err::ENOTDIR_}},

        {"setxattr",
         {"setxattr", "lsetxattr", "fsetxattr"},
         {{"size", ArgClass::Numeric}, {"flags", ArgClass::Categorical}},
         SuccessKind::Unit,
         {Err::E2BIG_, Err::EACCES_, Err::EBADF_, Err::EDQUOT_, Err::EEXIST_,
          Err::EFAULT_, Err::EINVAL_, Err::ELOOP_, Err::ENAMETOOLONG_,
          Err::ENODATA_, Err::ENOENT_, Err::ENOSPC_, Err::ENOTDIR_,
          Err::EOPNOTSUPP_, Err::EPERM_, Err::ERANGE_, Err::EROFS_}},

        {"getxattr",
         {"getxattr", "lgetxattr", "fgetxattr"},
         {{"size", ArgClass::Numeric}},
         SuccessKind::ByteCount,
         {Err::EACCES_, Err::EBADF_, Err::EFAULT_, Err::ELOOP_,
          Err::ENAMETOOLONG_, Err::ENODATA_, Err::ENOENT_, Err::ENOTDIR_,
          Err::EOPNOTSUPP_, Err::ERANGE_}},
    };
    return kRegistry;
}

const std::vector<SyscallSpec>& extended_syscall_registry() {
    static const std::vector<SyscallSpec> kExtended = [] {
        std::vector<SyscallSpec> regs = syscall_registry();
        // Track the positional-I/O offset argument (pread64/pwrite64
        // carry "pos"; plain read/write do not, which the analyzer
        // handles as a variant without the argument).
        for (auto& spec : regs)
            if (spec.base == "read" || spec.base == "write")
                spec.args.push_back({"pos", ArgClass::Numeric});
        regs.push_back(
            {"unlink",
             {"unlink", "rmdir"},
             {{"pathname", ArgClass::Identifier}},
             SuccessKind::Unit,
             {Err::EACCES_, Err::EBUSY_, Err::EFAULT_, Err::EISDIR_,
              Err::ELOOP_, Err::ENAMETOOLONG_, Err::ENOENT_,
              Err::ENOTDIR_, Err::ENOTEMPTY_, Err::EPERM_, Err::EROFS_,
              Err::EINVAL_}});
        regs.push_back(
            {"rename",
             {"rename"},
             {{"oldpath", ArgClass::Identifier}},
             SuccessKind::Unit,
             {Err::EACCES_, Err::EBUSY_, Err::EEXIST_, Err::EFAULT_,
              Err::EINVAL_, Err::EISDIR_, Err::ELOOP_, Err::EMLINK_,
              Err::ENAMETOOLONG_, Err::ENOENT_, Err::ENOSPC_,
              Err::ENOTDIR_, Err::ENOTEMPTY_, Err::EPERM_, Err::EROFS_,
              Err::EXDEV_}});
        regs.push_back(
            {"symlink",
             {"symlink"},
             {{"linkpath", ArgClass::Identifier}},
             SuccessKind::Unit,
             {Err::EACCES_, Err::EEXIST_, Err::EFAULT_, Err::ELOOP_,
              Err::ENAMETOOLONG_, Err::ENOENT_, Err::ENOSPC_,
              Err::ENOTDIR_, Err::EPERM_, Err::EROFS_}});
        regs.push_back(
            {"link",
             {"link"},
             {{"oldpath", ArgClass::Identifier}},
             SuccessKind::Unit,
             {Err::EACCES_, Err::EEXIST_, Err::EFAULT_, Err::ELOOP_,
              Err::EMLINK_, Err::ENAMETOOLONG_, Err::ENOENT_,
              Err::ENOSPC_, Err::ENOTDIR_, Err::EPERM_, Err::EROFS_,
              Err::EXDEV_}});
        regs.push_back({"fsync",
                        {"fsync", "fdatasync"},
                        {{"fd", ArgClass::Identifier}},
                        SuccessKind::Unit,
                        {Err::EBADF_, Err::EDQUOT_, Err::EINTR_, Err::EIO_,
                         Err::ENOSPC_, Err::EROFS_, Err::EINVAL_}});
        return regs;
    }();
    return kExtended;
}

std::optional<std::string> base_of_variant(
    std::string_view variant, const std::vector<SyscallSpec>& registry) {
    for (const auto& spec : registry)
        for (const auto& v : spec.variants)
            if (v == variant) return spec.base;
    return std::nullopt;
}

std::optional<std::string> base_of_variant(std::string_view variant) {
    return base_of_variant(variant, syscall_registry());
}

const SyscallSpec* find_spec(std::string_view base,
                             const std::vector<SyscallSpec>& registry) {
    for (const auto& spec : registry)
        if (spec.base == base) return &spec;
    return nullptr;
}

const SyscallSpec* find_spec(std::string_view base) {
    return find_spec(base, syscall_registry());
}

std::size_t tracked_variant_count() {
    std::size_t n = 0;
    for (const auto& spec : syscall_registry()) n += spec.variants.size();
    return n;
}

std::size_t tracked_argument_count() {
    std::size_t n = 0;
    for (const auto& spec : syscall_registry()) n += spec.args.size();
    return n;
}

}  // namespace iocov::core
