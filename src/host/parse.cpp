#include "host/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace iocov::host {

bool parse_u64(std::string_view text, std::uint64_t& out) {
    if (text.empty()) return false;
    std::uint64_t v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return false;  // would overflow, not saturate
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
    std::uint64_t v = 0;
    if (!parse_u64(text, v)) return false;
    if (v > std::numeric_limits<std::uint32_t>::max()) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool parse_f64(std::string_view text, double& out) {
    if (text.empty()) return false;
    const std::string owned(text);  // strtod needs a terminator
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) return false;
    if (errno == ERANGE || !std::isfinite(v)) return false;
    out = v;
    return true;
}

}  // namespace iocov::host
