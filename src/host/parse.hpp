// Strict numeric parsing for operands the tool cannot afford to guess
// about.  The CLI used to feed flag operands straight into
// strtoul(..., nullptr, 10): `--threads junk` silently became 0 and
// `--seed 18446744073709551616` silently saturated to UINT64_MAX —
// both then drove real behavior (serial ingest, a different RNG
// stream) with no hint anything was wrong.  These helpers accept a
// whole-string decimal integer or nothing: empty input, sign
// characters, trailing junk, and overflow are all rejected, and the
// caller turns a rejection into a usage error (exit 2) instead of a
// silently different run.
#pragma once

#include <cstdint>
#include <string_view>

namespace iocov::host {

/// Whole-string decimal u64.  Rejects empty strings, signs, leading
/// "0x", embedded junk, and values > 2^64-1.  `out` is untouched on
/// failure.
bool parse_u64(std::string_view text, std::uint64_t& out);

/// parse_u64 restricted to values representable as u32.
bool parse_u32(std::string_view text, std::uint32_t& out);

/// Whole-string finite double via strtod ("1.5", "0.25", "2e3").
/// Rejects empty strings, trailing junk, inf/nan/overflow.  `out` is
/// untouched on failure.
bool parse_f64(std::string_view text, double& out);

}  // namespace iocov::host
