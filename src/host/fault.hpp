// Self-fault injection for the host I/O layer — eating our own dogfood.
//
// vfs/fault.hpp injects errnos into the *simulated* file system so
// testers can cover hard-to-reach error outputs.  FaultHook does the
// same to iocov's own host I/O: every primitive in host/io.cpp (and the
// MappedFile read path) consults it before touching the kernel, so a
// chaos harness can make the tool's own writes fail with ENOSPC/EIO,
// come up short, get interrupted with EINTR, or SIGKILL the process at
// an exact operation — and then assert the durability oracle on what
// is left on disk.
//
// Configuration is process-global (host I/O is a process-wide
// resource): the `IOCOV_SELF_FAULT` environment variable or the hidden
// `--self-fault` CLI flag, a comma-separated clause list:
//
//   errno:<phase|any>:<ERRNO>:<k>   k-th matching op fails with ERRNO;
//                                   k == 0 means *every* matching op
//   short:<k>                       k-th write() writes only half its
//                                   bytes (short-write path exercise)
//   eof:<k>                         k-th read() returns 0 — simulates
//                                   the file shrinking mid-read
//   kill:<phase|any>:<k>            raise(SIGKILL) immediately before
//                                   the k-th matching op
//   kill:write:<k>:<off>            k-th write() persists `off` bytes,
//                                   then SIGKILL — a torn host write
//   stats:<path>                    at process exit, write per-phase op
//                                   counts (for probing the op space)
//
// Phases are the IoPhase names from host/io.hpp ("temp-create",
// "write", "sync", "close", "rename", "dir-open", "dirsync", "open",
// "stat", "read", "accept", "sock-read", "sock-write") or "any".
// ERRNO is a symbolic name (ENOSPC, EIO, EINTR, EAGAIN, ENOMEM,
// EDQUOT, EROFS, ENOENT, EACCES, EBADF, EFBIG, EMFILE, ENFILE, EPERM,
// and the socket family EPIPE, ECONNRESET, ECONNABORTED,
// ECONNREFUSED, ENOTCONN, ETIMEDOUT) or a plain decimal errno value.  Injected
// errnos are indistinguishable from real ones: a clause firing EINTR is
// retried by the normal retry policy, ENOSPC aborts the write with a
// structured IoError, exactly as the kernel's would.
//
// Counting is per-clause: each clause keeps its own count of matching
// ops, so `errno:write:ENOSPC:3,errno:sync:EIO:1` arms two independent
// faults.  All state sits behind one mutex; the inactive fast path is a
// single relaxed atomic load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "host/io.hpp"

namespace iocov::host {

class FaultHook {
  public:
    /// What the hooked primitive should do for the op it is about to
    /// perform.  Fields compose: a kill action overrides the rest.
    struct Action {
        int inject_errno = 0;  ///< fail with this errno (0 = no fault)
        /// Clamp a write/read to this many bytes (SIZE_MAX = no clamp).
        std::size_t clamp_bytes = SIZE_MAX;
        bool shorten = false;  ///< halve this write (short-write clause)
        bool eof = false;   ///< make read() return 0 ("file shrank")
        bool kill = false;  ///< raise(SIGKILL) — before the op, or ...
        /// ... for writes: after persisting this many bytes (SIZE_MAX =
        /// before any byte).
        std::size_t kill_after_bytes = SIZE_MAX;
    };

    /// True once any clause is configured; the only check on the fast
    /// path when no self-fault run is active.
    static bool active();

    /// Counts the op and returns the armed action, firing (and
    /// consuming) any one-shot clause whose count matched.  When
    /// `Action::kill` is set without kill_after_bytes the caller is
    /// expected to not return (consult() already raised SIGKILL for
    /// non-write phases; write handles the partial-then-kill case).
    static Action consult(IoPhase phase);

    /// Parses and installs `spec` (clauses accumulate onto whatever is
    /// already configured).  Returns an error message on a malformed
    /// spec, nullopt on success.
    static std::optional<std::string> configure(std::string_view spec);

    /// Installs IOCOV_SELF_FAULT if set; exits the process with a
    /// message on stderr if the env spec is malformed.  Idempotent —
    /// the env is read at most once per process.
    static void configure_from_env();

    /// Drops every clause and counter (tests).
    static void reset();

    /// Ops consulted so far, total and per phase.
    static std::uint64_t total_ops();
    static std::uint64_t ops(IoPhase phase);
    /// Payload bytes actually handed to write() so far.
    static std::uint64_t write_bytes();
    /// Called by the write primitive (only while active) so the stats
    /// probe can report the torn-write offset space.
    static void note_write_bytes(std::uint64_t n);
};

/// Parses a symbolic ("ENOSPC") or decimal errno; 0 on failure.
int parse_errno_name(std::string_view name);

}  // namespace iocov::host
