#include "host/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include "host/fault.hpp"

namespace iocov::host {
namespace {

constexpr std::string_view kPhaseNames[] = {
    "temp-create", "write", "sync", "close", "rename",
    "dir-open",    "dirsync", "open", "stat", "read",
    "accept",      "sock-read", "sock-write",
};

/// Exponential backoff state for one logical operation.  EINTR retries
/// immediately (the op was interrupted, not refused); everything else
/// transient sleeps, doubling up to the cap.
struct Backoff {
    explicit Backoff(const RetryPolicy& p)
        : policy(p), next_us(p.backoff_initial_us) {}

    void wait(int err) {
        if (err == EINTR || next_us == 0) return;
        timespec ts{next_us / 1'000'000,
                    static_cast<long>(next_us % 1'000'000) * 1000};
        ::nanosleep(&ts, nullptr);
        if (next_us < policy.backoff_cap_us)
            next_us = std::min(policy.backoff_cap_us, next_us * 2);
    }

    const RetryPolicy& policy;
    std::uint32_t next_us;
};

/// Splits "dir/name" into the directory that must be fsync'd after a
/// rename in it ("." for a bare name).
std::string parent_dir(const std::string& path) {
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

/// open() with fault consultation and EINTR retry.
int open_retry(const char* path, int flags, unsigned mode, IoPhase phase,
               const RetryPolicy& policy, unsigned& retries) {
    Backoff backoff(policy);
    for (;;) {
        int injected = 0;
        if (FaultHook::active())
            injected = FaultHook::consult(phase).inject_errno;
        const int fd = injected
                           ? (errno = injected, -1)
                           : ::open(path, flags,
                                    static_cast<mode_t>(mode));
        if (fd >= 0) return fd;
        if (!transient_errno(errno) || retries >= policy.max_retries)
            return -1;
        ++retries;
        backoff.wait(errno);
    }
}

/// fsync() with fault consultation and transient retry.
bool fsync_retry(int fd, IoPhase phase, const RetryPolicy& policy,
                 unsigned& retries) {
    Backoff backoff(policy);
    for (;;) {
        int injected = 0;
        if (FaultHook::active()) {
            const auto a = FaultHook::consult(phase);
            injected = a.inject_errno;
        }
        const int rc = injected ? (errno = injected, -1) : ::fsync(fd);
        if (rc == 0) return true;
        if (!transient_errno(errno) || retries >= policy.max_retries)
            return false;
        ++retries;
        backoff.wait(errno);
    }
}

}  // namespace

std::string_view phase_name(IoPhase phase) {
    return kPhaseNames[static_cast<std::size_t>(phase)];
}

std::optional<IoPhase> phase_from_name(std::string_view name) {
    for (std::size_t i = 0; i < std::size(kPhaseNames); ++i)
        if (kPhaseNames[i] == name) return static_cast<IoPhase>(i);
    return std::nullopt;
}

std::string IoError::to_string() const {
    std::string s(phase_name(phase));
    s += ' ';
    s += path;
    s += ": ";
    s += err ? std::strerror(err) : "short write";
    s += " (errno ";
    s += std::to_string(err);
    if (retries) {
        s += " after ";
        s += std::to_string(retries);
        s += " retries";
    }
    s += ')';
    return s;
}

bool transient_errno(int err) {
    return err == EINTR || err == EAGAIN
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
           || err == EWOULDBLOCK
#endif
        ;  // NOLINT(whitespace/semicolon)
}

RetryPolicy RetryPolicy::standard() {
    static const RetryPolicy policy = [] {
        RetryPolicy p;
        if (const char* env = std::getenv("IOCOV_IO_RETRIES")) {
            char* end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end && *end == '\0') p.max_retries = static_cast<unsigned>(v);
        }
        return p;
    }();
    return policy;
}

// ---- AtomicWriter ----------------------------------------------------------

AtomicWriter::~AtomicWriter() { abort(); }

IoStatus AtomicWriter::fail(IoPhase phase, int err, unsigned retries) {
    abort();
    return IoError{phase, err, path_, retries};
}

IoStatus AtomicWriter::open(std::string path, WriteOptions opts) {
    path_ = std::move(path);
    opts_ = opts;
    committed_ = false;
    // The temp file must live in the destination directory: rename() is
    // only atomic within one file system, and fsync'ing the destination
    // directory is only meaningful if the temp entry was created there.
    const auto slash = path_.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string()
                                : path_.substr(0, slash + 1);
    const std::string base =
        slash == std::string::npos ? path_ : path_.substr(slash + 1);
    unsigned retries = 0;
    // O_EXCL + a counter suffix: two processes replacing the same
    // artifact never share a temp file; whoever renames last wins whole.
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
        temp_path_ = dir + "." + base + ".tmp." +
                     std::to_string(static_cast<unsigned long>(::getpid())) +
                     (attempt ? "." + std::to_string(attempt) : std::string());
        fd_ = open_retry(temp_path_.c_str(),
                         O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                         opts_.mode, IoPhase::TempCreate, opts_.retry,
                         retries);
        if (fd_ >= 0) return std::nullopt;
        if (errno != EEXIST) break;
    }
    const int err = errno;
    temp_path_.clear();
    return fail(IoPhase::TempCreate, err, retries);
}

IoStatus AtomicWriter::write(std::string_view bytes) {
    if (fd_ < 0) return fail(IoPhase::Write, EBADF);
    std::size_t done = 0;
    unsigned retries = 0;
    Backoff backoff(opts_.retry);
    while (done < bytes.size()) {
        std::size_t want = bytes.size() - done;
        int injected = 0;
        if (FaultHook::active()) {
            const auto a = FaultHook::consult(IoPhase::Write);
            if (a.kill) {
                // Torn host write: persist the prefix, then die exactly
                // here — the chaos oracle must still find a complete
                // artifact at the destination.
                const std::size_t pre = std::min(a.kill_after_bytes, want);
                if (pre > 0) {
                    [[maybe_unused]] const ssize_t n =
                        ::write(fd_, bytes.data() + done, pre);
                }
                ::raise(SIGKILL);
            }
            injected = a.inject_errno;
            if (a.shorten && want > 1) want = std::max<std::size_t>(1,
                                                                    want / 2);
            want = std::min(want, a.clamp_bytes);
        }
        const ssize_t n = injected
                              ? (errno = injected, ssize_t{-1})
                              : ::write(fd_, bytes.data() + done, want);
        if (n > 0) {
            if (FaultHook::active())
                FaultHook::note_write_bytes(static_cast<std::uint64_t>(n));
            done += static_cast<std::size_t>(n);
            continue;
        }
        const int err = n == 0 ? 0 : errno;
        if (transient_errno(err) && retries < opts_.retry.max_retries) {
            ++retries;
            backoff.wait(err);
            continue;
        }
        if (n == 0) {
            // write() returning 0 for a nonzero count: either a fault
            // hook EOF or a pathological fs.  Bounded like any other
            // non-progress condition.
            if (retries < opts_.retry.max_retries) {
                ++retries;
                continue;
            }
            return fail(IoPhase::Write, ENOSPC, retries);
        }
        return fail(IoPhase::Write, err, retries);
    }
    return std::nullopt;
}

IoStatus AtomicWriter::commit() {
    if (fd_ < 0) return fail(IoPhase::Sync, EBADF);
    unsigned retries = 0;
    if (opts_.durable &&
        !fsync_retry(fd_, IoPhase::Sync, opts_.retry, retries))
        return fail(IoPhase::Sync, errno, retries);
    {
        int injected = 0;
        if (FaultHook::active())
            injected = FaultHook::consult(IoPhase::Close).inject_errno;
        // close() EINTR is treated as success: POSIX leaves the fd state
        // unspecified and Linux always releases it — retrying risks
        // closing someone else's fd.
        const int rc = injected && injected != EINTR
                           ? (errno = injected, -1)
                           : ::close(fd_);
        fd_ = -1;
        if (rc != 0 && errno != EINTR)
            return fail(IoPhase::Close, errno);
    }
    {
        Backoff backoff(opts_.retry);
        retries = 0;
        for (;;) {
            int injected = 0;
            if (FaultHook::active())
                injected = FaultHook::consult(IoPhase::Rename).inject_errno;
            const int rc = injected
                               ? (errno = injected, -1)
                               : ::rename(temp_path_.c_str(), path_.c_str());
            if (rc == 0) break;
            if (!transient_errno(errno) ||
                retries >= opts_.retry.max_retries)
                return fail(IoPhase::Rename, errno, retries);
            ++retries;
            backoff.wait(errno);
        }
    }
    // The rename has happened: from here on the destination holds the
    // new complete artifact, so failures are reported (durability of
    // the rename is not yet guaranteed) without rolling anything back.
    committed_ = true;
    temp_path_.clear();
    if (opts_.durable) {
        retries = 0;
        const int dfd = open_retry(parent_dir(path_).c_str(),
                                   O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0,
                                   IoPhase::DirOpen, opts_.retry, retries);
        if (dfd < 0) {
            IoError e{IoPhase::DirOpen, errno, path_, retries};
            return e;
        }
        retries = 0;
        const bool synced =
            fsync_retry(dfd, IoPhase::DirSync, opts_.retry, retries);
        const int err = errno;
        ::close(dfd);
        if (!synced) return IoError{IoPhase::DirSync, err, path_, retries};
    }
    return std::nullopt;
}

void AtomicWriter::abort() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!committed_ && !temp_path_.empty()) ::unlink(temp_path_.c_str());
    temp_path_.clear();
}

IoStatus write_file_atomic(const std::string& path, std::string_view bytes,
                           const WriteOptions& opts) {
    AtomicWriter w;
    if (auto e = w.open(path, opts)) return e;
    if (auto e = w.write(bytes)) return e;
    return w.commit();
}

// ---- fds, pipes, sockets ---------------------------------------------------

void ignore_sigpipe() {
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
}

IoStatus write_fd(int fd, std::string_view bytes, IoPhase phase,
                  const RetryPolicy& policy, std::string label) {
    std::size_t done = 0;
    unsigned retries = 0;
    Backoff backoff(policy);
    while (done < bytes.size()) {
        std::size_t want = bytes.size() - done;
        int injected = 0;
        if (FaultHook::active()) {
            const auto a = FaultHook::consult(phase);
            injected = a.inject_errno;
            if (a.shorten && want > 1)
                want = std::max<std::size_t>(1, want / 2);
            want = std::min(want, a.clamp_bytes);
        }
        const ssize_t n = injected
                              ? (errno = injected, ssize_t{-1})
                              : ::write(fd, bytes.data() + done, want);
        if (n > 0) {
            done += static_cast<std::size_t>(n);
            continue;
        }
        const int err = n == 0 ? 0 : errno;
        if (transient_errno(err) && retries < policy.max_retries) {
            ++retries;
            backoff.wait(err);
            continue;
        }
        return IoError{phase, err, std::move(label), retries};
    }
    return std::nullopt;
}

IoStatus read_fd(int fd, std::size_t want, std::string& out, IoPhase phase,
                 const RetryPolicy& policy, std::string label) {
    std::size_t done = 0;
    unsigned retries = 0;
    Backoff backoff(policy);
    char buf[1 << 16];
    while (done < want) {
        const std::size_t chunk = std::min(want - done, sizeof buf);
        int injected = 0;
        bool eof = false;
        if (FaultHook::active()) {
            const auto a = FaultHook::consult(phase);
            injected = a.inject_errno;
            eof = a.eof;
        }
        const ssize_t n = eof ? 0
                              : injected ? (errno = injected, ssize_t{-1})
                                         : ::read(fd, buf, chunk);
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            done += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)  // peer closed mid-message: torn frame, err == 0
            return IoError{phase, 0, std::move(label), retries};
        if (transient_errno(errno) && retries < policy.max_retries) {
            ++retries;
            backoff.wait(errno);
            continue;
        }
        return IoError{phase, errno, std::move(label), retries};
    }
    return std::nullopt;
}

}  // namespace iocov::host
