#include "host/fault.hpp"

#include <atomic>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace iocov::host {
namespace {

constexpr std::size_t kPhaseCount = 13;

struct Clause {
    enum class Kind : std::uint8_t { Errno, Short, Eof, Kill, KillAfter };
    Kind kind = Kind::Errno;
    std::optional<IoPhase> phase;  ///< nullopt = "any"
    int err = 0;
    std::uint64_t k = 0;  ///< 1-based op index; 0 = every matching op
    std::size_t off = 0;  ///< KillAfter: bytes persisted before the kill
    std::uint64_t seen = 0;
    bool fired = false;
};

struct State {
    std::mutex mu;
    std::vector<Clause> clauses;
    std::array<std::uint64_t, kPhaseCount> ops{};
    std::uint64_t total = 0;
    std::uint64_t write_bytes = 0;
    std::string stats_path;
    bool stats_registered = false;
    bool env_loaded = false;
};

State& state() {
    static State s;
    return s;
}

std::atomic<bool> g_active{false};

void write_stats_at_exit() {
    // Deliberately a plain stdio write: the stats probe runs fault-free
    // and must not recurse into the hooked layer it is describing.
    auto& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.stats_path.empty()) return;
    std::FILE* f = std::fopen(st.stats_path.c_str(), "w");
    if (!f) return;
    std::fprintf(f, "total %llu\nwrite_bytes %llu\n",
                 static_cast<unsigned long long>(st.total),
                 static_cast<unsigned long long>(st.write_bytes));
    for (std::size_t i = 0; i < kPhaseCount; ++i)
        if (st.ops[i])
            std::fprintf(f, "%.*s %llu\n",
                         static_cast<int>(
                             phase_name(static_cast<IoPhase>(i)).size()),
                         phase_name(static_cast<IoPhase>(i)).data(),
                         static_cast<unsigned long long>(st.ops[i]));
    std::fclose(f);
}

struct ErrName {
    const char* name;
    int value;
};

constexpr ErrName kErrNames[] = {
    {"ENOSPC", ENOSPC}, {"EIO", EIO},         {"EINTR", EINTR},
    {"EAGAIN", EAGAIN}, {"ENOMEM", ENOMEM},   {"EDQUOT", EDQUOT},
    {"EROFS", EROFS},   {"ENOENT", ENOENT},   {"EACCES", EACCES},
    {"EBADF", EBADF},   {"EFBIG", EFBIG},     {"EMFILE", EMFILE},
    {"ENFILE", ENFILE}, {"EPERM", EPERM},     {"ENODEV", ENODEV},
    {"EISDIR", EISDIR}, {"ENOTDIR", ENOTDIR}, {"EPIPE", EPIPE},
    {"ECONNRESET", ECONNRESET},               {"ECONNABORTED", ECONNABORTED},
    {"ECONNREFUSED", ECONNREFUSED},           {"ENOTCONN", ENOTCONN},
    {"ETIMEDOUT", ETIMEDOUT},
};

std::vector<std::string_view> split(std::string_view s, char sep) {
    std::vector<std::string_view> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const auto next = s.find(sep, pos);
        out.push_back(s.substr(
            pos, next == std::string_view::npos ? std::string_view::npos
                                                : next - pos));
        if (next == std::string_view::npos) break;
        pos = next + 1;
    }
    return out;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
    if (s.empty()) return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
}

std::optional<std::string> parse_clause(std::string_view text,
                                        Clause& clause,
                                        std::string& stats_path) {
    const auto fields = split(text, ':');
    const auto err_msg = [&](const char* why) {
        return "bad self-fault clause '" + std::string(text) + "': " + why;
    };
    if (fields.empty() || fields[0].empty())
        return err_msg("empty clause");
    const std::string_view kind = fields[0];

    auto parse_phase = [&](std::string_view name,
                           std::optional<IoPhase>& out) -> bool {
        if (name == "any") {
            out = std::nullopt;
            return true;
        }
        const auto p = phase_from_name(name);
        if (!p) return false;
        out = p;
        return true;
    };

    if (kind == "errno") {
        // errno:<phase|any>:<ERRNO>:<k>
        if (fields.size() != 4) return err_msg("want errno:PHASE:ERRNO:K");
        clause.kind = Clause::Kind::Errno;
        if (!parse_phase(fields[1], clause.phase))
            return err_msg("unknown phase");
        clause.err = parse_errno_name(fields[2]);
        if (clause.err == 0) return err_msg("unknown errno");
        if (!parse_u64(fields[3], clause.k)) return err_msg("bad op index");
        return std::nullopt;
    }
    if (kind == "short") {
        // short:<k>
        if (fields.size() != 2) return err_msg("want short:K");
        clause.kind = Clause::Kind::Short;
        clause.phase = IoPhase::Write;
        if (!parse_u64(fields[1], clause.k) || clause.k == 0)
            return err_msg("bad op index");
        return std::nullopt;
    }
    if (kind == "eof") {
        // eof:<k>
        if (fields.size() != 2) return err_msg("want eof:K");
        clause.kind = Clause::Kind::Eof;
        clause.phase = IoPhase::Read;
        if (!parse_u64(fields[1], clause.k) || clause.k == 0)
            return err_msg("bad op index");
        return std::nullopt;
    }
    if (kind == "kill") {
        // kill:<phase|any>:<k>[:<off>]
        if (fields.size() != 3 && fields.size() != 4)
            return err_msg("want kill:PHASE:K[:OFF]");
        if (!parse_phase(fields[1], clause.phase))
            return err_msg("unknown phase");
        if (!parse_u64(fields[2], clause.k) || clause.k == 0)
            return err_msg("bad op index");
        if (fields.size() == 4) {
            std::uint64_t off = 0;
            if (!parse_u64(fields[3], off)) return err_msg("bad byte offset");
            if (!clause.phase || *clause.phase != IoPhase::Write)
                return err_msg("byte offset only applies to write");
            clause.kind = Clause::Kind::KillAfter;
            clause.off = static_cast<std::size_t>(off);
        } else {
            clause.kind = Clause::Kind::Kill;
        }
        return std::nullopt;
    }
    if (kind == "stats") {
        // stats:<path>  (path may itself contain ':'? keep it simple: no)
        if (fields.size() != 2 || fields[1].empty())
            return err_msg("want stats:PATH");
        stats_path.assign(fields[1]);
        clause.kind = Clause::Kind::Errno;  // sentinel, not installed
        clause.err = -1;
        return std::nullopt;
    }
    return err_msg("unknown clause kind");
}

}  // namespace

int parse_errno_name(std::string_view name) {
    for (const auto& e : kErrNames)
        if (name == e.name) return e.value;
    std::uint64_t v = 0;
    if (parse_u64(name, v) && v > 0 && v < 4096) return static_cast<int>(v);
    return 0;
}

bool FaultHook::active() {
    return g_active.load(std::memory_order_relaxed);
}

FaultHook::Action FaultHook::consult(IoPhase phase) {
    Action action;
    auto& st = state();
    {
        std::lock_guard<std::mutex> lock(st.mu);
        ++st.total;
        ++st.ops[static_cast<std::size_t>(phase)];
        for (auto& c : st.clauses) {
            if (c.fired) continue;
            if (c.phase && *c.phase != phase) continue;
            ++c.seen;
            if (c.k != 0 && c.seen != c.k) continue;
            if (c.k != 0) c.fired = true;
            switch (c.kind) {
                case Clause::Kind::Errno:
                    action.inject_errno = c.err;
                    break;
                case Clause::Kind::Short:
                    action.shorten = true;
                    break;
                case Clause::Kind::Eof:
                    action.eof = true;
                    break;
                case Clause::Kind::Kill:
                    action.kill = true;
                    break;
                case Clause::Kind::KillAfter:
                    action.kill = true;
                    action.kill_after_bytes = c.off;
                    break;
            }
        }
    }
    // A plain kill dies before the op it targets; only the write-torn
    // variant (kill after OFF bytes) is deferred to the caller, which
    // persists the prefix first.
    if (action.kill &&
        (phase != IoPhase::Write || action.kill_after_bytes == SIZE_MAX))
        ::raise(SIGKILL);
    return action;
}

void FaultHook::note_write_bytes(std::uint64_t n) {
    auto& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.write_bytes += n;
}

std::optional<std::string> FaultHook::configure(std::string_view spec) {
    if (spec.empty()) return std::nullopt;
    std::vector<Clause> parsed;
    std::string stats_path;
    for (const auto clause_text : split(spec, ',')) {
        if (clause_text.empty()) continue;
        Clause c;
        if (auto err = parse_clause(clause_text, c, stats_path)) return err;
        if (c.err != -1) parsed.push_back(c);  // -1 = stats sentinel
    }
    auto& st = state();
    bool need_atexit = false;
    {
        std::lock_guard<std::mutex> lock(st.mu);
        for (auto& c : parsed) st.clauses.push_back(std::move(c));
        if (!stats_path.empty()) {
            st.stats_path = std::move(stats_path);
            need_atexit = !st.stats_registered;
            st.stats_registered = true;
        }
        g_active.store(!st.clauses.empty() || !st.stats_path.empty(),
                       std::memory_order_relaxed);
    }
    if (need_atexit) std::atexit(write_stats_at_exit);
    return std::nullopt;
}

void FaultHook::configure_from_env() {
    auto& st = state();
    {
        std::lock_guard<std::mutex> lock(st.mu);
        if (st.env_loaded) return;
        st.env_loaded = true;
    }
    const char* env = std::getenv("IOCOV_SELF_FAULT");
    if (!env || !*env) return;
    if (auto err = configure(env)) {
        std::fprintf(stderr, "iocov: IOCOV_SELF_FAULT: %s\n", err->c_str());
        std::exit(2);
    }
}

void FaultHook::reset() {
    auto& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.clauses.clear();
    st.ops.fill(0);
    st.total = 0;
    st.write_bytes = 0;
    st.stats_path.clear();
    st.env_loaded = false;
    g_active.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultHook::total_ops() {
    auto& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.total;
}

std::uint64_t FaultHook::ops(IoPhase phase) {
    auto& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.ops[static_cast<std::size_t>(phase)];
}

std::uint64_t FaultHook::write_bytes() {
    auto& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.write_bytes;
}

}  // namespace iocov::host
