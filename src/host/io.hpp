// Durable host I/O: the layer iocov trusts with its *own* artifacts.
//
// The paper's thesis — coverage must include environmental failure
// inputs (errnos) and failure outputs — applies to this tool as much as
// to the file systems it measures.  Every artifact iocov emits (IOCS
// snapshots, saved reports, JSON summaries, converted traces,
// checkpoint manifests) used to be written with a bare truncating
// ofstream: a SIGKILL or ENOSPC mid-write destroyed the previous good
// artifact and could leave a torn file nothing detected.  host::io is
// the fix, and the contract the chaos gate (scripts/check_chaos.sh)
// enforces:
//
//   At every instant, an artifact path holds either the prior complete
//   artifact or the new complete artifact — never a torn one.
//
// The mechanism is the classic all-or-nothing sequence: write the new
// bytes to a temp file *in the destination directory*, fsync the file,
// rename() over the destination, fsync the directory.  Every step
// consults host::FaultHook (host/fault.hpp) so the tool's own failure
// handling is testable the same way it tests everyone else's, and every
// transient errno (EINTR, EAGAIN) is retried under a bounded backoff
// policy instead of aborting the write.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace iocov::host {

// ---- phases ----------------------------------------------------------------

/// Which host-I/O step an operation (or a failure) belongs to.  This is
/// both the error taxonomy (IoError::phase) and the fault-hook match
/// key (`IOCOV_SELF_FAULT="errno:rename:ENOSPC:1"`).
enum class IoPhase : std::uint8_t {
    TempCreate,  ///< creating the temp file next to the destination
    Write,       ///< write()ing payload bytes
    Sync,        ///< fsync() of the temp file
    Close,       ///< close() of the temp file
    Rename,      ///< rename() over the destination
    DirOpen,     ///< opening the destination directory for fsync
    DirSync,     ///< fsync() of the destination directory
    Open,        ///< opening a file for reading
    Stat,        ///< fstat() of an opened file
    Read,        ///< read()ing file bytes (mmap-fallback path)
    Accept,      ///< accept()ing a serve connection
    SockRead,    ///< recv()/read() on a socket or pipe
    SockWrite,   ///< send()/write() on a socket or pipe
};

/// Stable lower-case name ("temp-create", "write", "dirsync", ...).
std::string_view phase_name(IoPhase phase);

/// Inverse of phase_name; nullopt for unknown names.
std::optional<IoPhase> phase_from_name(std::string_view name);

// ---- errors ----------------------------------------------------------------

/// A structured host-I/O failure: which step failed, with which errno,
/// on which path — replacing the bare `bool`/unchecked-stream results
/// the write paths used to return.
struct IoError {
    IoPhase phase = IoPhase::Open;
    int err = 0;        ///< errno value at the point of failure
    std::string path;   ///< the artifact (not temp-file) path
    unsigned retries = 0;  ///< transient retries consumed before giving up

    /// "write out.iocs: No space left on device (ENOSPC, write phase)".
    std::string to_string() const;
};

/// nullopt == success; the error otherwise.
using IoStatus = std::optional<IoError>;

// ---- retry policy ----------------------------------------------------------

/// Bounded retry/backoff for transient errnos.  EINTR retries
/// immediately (the syscall was merely interrupted); EAGAIN/EWOULDBLOCK
/// sleeps `backoff_initial_us`, doubling per retry up to `backoff_cap_us`.
/// `max_retries` bounds the total transient retries of one logical
/// operation, so a persistently-failing fd cannot spin forever.
struct RetryPolicy {
    unsigned max_retries = 8;
    std::uint32_t backoff_initial_us = 50;
    std::uint32_t backoff_cap_us = 20'000;

    static RetryPolicy none() { return {0, 0, 0}; }
    /// Default policy; `IOCOV_IO_RETRIES` (an integer) overrides
    /// max_retries for the whole process (the "configurable cap").
    static RetryPolicy standard();
};

/// True for errnos worth retrying (EINTR, EAGAIN/EWOULDBLOCK).
bool transient_errno(int err);

// ---- atomic writer ---------------------------------------------------------

struct WriteOptions {
    RetryPolicy retry = RetryPolicy::standard();
    /// When true (the default, and what every CLI artifact uses), the
    /// temp file is fsync'd before rename and the directory after, so
    /// the replace survives power loss.  false keeps the atomic
    /// temp+rename shape without the syncs (crash-during-process-life
    /// safety only) — for tests that sweep the non-durable shape.
    bool durable = true;
    unsigned mode = 0644;  ///< permission bits for a newly created file
};

/// Streaming all-or-nothing file replace.  Usage:
///
///   AtomicWriter w;
///   if (auto e = w.open(path)) return *e;
///   if (auto e = w.write(chunk)) return *e;   // repeat as needed
///   if (auto e = w.commit()) return *e;       // sync + rename + dirsync
///
/// Until commit() returns success the destination is untouched; an
/// uncommitted writer unlinks its temp file on destruction (or abort()),
/// so a failed write never leaves debris that a later directory scan
/// would trip over.
class AtomicWriter {
  public:
    AtomicWriter() = default;
    ~AtomicWriter();
    AtomicWriter(const AtomicWriter&) = delete;
    AtomicWriter& operator=(const AtomicWriter&) = delete;

    /// Creates the temp file next to `path`.  Phase TempCreate.
    IoStatus open(std::string path, WriteOptions opts = {});

    /// Appends `bytes`, looping over short writes, retrying transient
    /// errnos per the policy.  Phase Write.
    IoStatus write(std::string_view bytes);

    /// fsync(file) + close + rename + fsync(dir).  After success the
    /// destination holds the new artifact durably.  A DirSync failure
    /// is reported even though the rename already happened: the content
    /// is in place but its durability is not guaranteed.
    IoStatus commit();

    /// Unlinks the temp file if not yet committed.  Idempotent.
    void abort();

    bool committed() const { return committed_; }
    const std::string& temp_path() const { return temp_path_; }

  private:
    IoStatus fail(IoPhase phase, int err, unsigned retries = 0);

    std::string path_;
    std::string temp_path_;
    WriteOptions opts_;
    int fd_ = -1;
    bool committed_ = false;
};

/// One-shot convenience over AtomicWriter: atomically (and, by default,
/// durably) replaces `path` with `bytes`.
IoStatus write_file_atomic(const std::string& path, std::string_view bytes,
                           const WriteOptions& opts = {});

// ---- fds, pipes, sockets ---------------------------------------------------

/// Ignores SIGPIPE process-wide (idempotent).  Without this a consumer
/// closing the read end of a pipe (`iocov analyze ... | head`) or a
/// serve client disconnecting mid-response kills the process outright,
/// skipping every cleanup path; with it the write fails with EPIPE and
/// surfaces as a structured IoError like any other host-I/O failure.
void ignore_sigpipe();

/// Full write of `bytes` to a blocking fd (pipe, socket, plain file),
/// looping over short writes, retrying transient errnos per the policy,
/// consulting FaultHook under `phase` per write() call.  `label` names
/// the peer in IoError::path (there is no filesystem path).
IoStatus write_fd(int fd, std::string_view bytes,
                  IoPhase phase = IoPhase::SockWrite,
                  const RetryPolicy& policy = RetryPolicy::standard(),
                  std::string label = "fd");

/// Full read of exactly `want` bytes from a blocking fd into `out`
/// (appended).  Early EOF and injected `eof` faults surface as an
/// IoError with err == 0.  Phase SockRead unless overridden.
IoStatus read_fd(int fd, std::size_t want, std::string& out,
                 IoPhase phase = IoPhase::SockRead,
                 const RetryPolicy& policy = RetryPolicy::standard(),
                 std::string label = "fd");

}  // namespace iocov::host
