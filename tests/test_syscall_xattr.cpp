// setxattr/getxattr families at the syscall boundary.
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "abi/xattr.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::syscall {
namespace {

using namespace iocov::abi;  // NOLINT

class XattrTest : public ::testing::Test {
  protected:
    XattrTest()
        : fs_(cfg()),
          fx_(testers::prepare_environment(fs_, "/mnt/test")),
          kernel_(fs_, &buffer_),
          user_(kernel_.make_process(2, vfs::Credentials::user(1000, 1000))) {
        path_ = fx_.scratch + "/xfile";
        const auto fd = user_.sys_open(path_.c_str(), O_CREAT | O_WRONLY,
                                       0644);
        user_.sys_close(static_cast<int>(fd));
        // A symlink pointing at the file, to separate the l* variants.
        const auto scratch_ino =
            fs_.resolve(fx_.scratch, vfs::Credentials::root()).value();
        fs_.make_symlink(scratch_ino, "xlink", path_,
                         vfs::Credentials::user(1000, 1000));
        link_ = fx_.scratch + "/xlink";
    }

    static vfs::FsConfig cfg() {
        vfs::FsConfig c;
        c.inode_xattr_capacity = 70000;
        return c;
    }

    std::vector<std::byte> value(std::size_t n, int fill = 7) {
        return std::vector<std::byte>(n, static_cast<std::byte>(fill));
    }

    vfs::FileSystem fs_;
    testers::Fixtures fx_;
    trace::TraceBuffer buffer_;
    Kernel kernel_;
    Process user_;
    std::string path_;
    std::string link_;
};

TEST_F(XattrTest, SetAndGetRoundTrip) {
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(10), 0), 0);
    // Size probe returns the value length.
    EXPECT_EQ(user_.sys_getxattr(path_.c_str(), "user.a", 0), 10);
    EXPECT_EQ(user_.sys_getxattr(path_.c_str(), "user.a", 64), 10);
    EXPECT_EQ(user_.sys_getxattr(path_.c_str(), "user.a", 5),
              fail(Err::ERANGE_));
}

TEST_F(XattrTest, MissingAttrIsEnodata) {
    EXPECT_EQ(user_.sys_getxattr(path_.c_str(), "user.none", 64),
              fail(Err::ENODATA_));
}

TEST_F(XattrTest, CreateAndReplaceFlags) {
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(4),
                                 XATTR_REPLACE_),
              fail(Err::ENODATA_));
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(4),
                                 XATTR_CREATE_),
              0);
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(4),
                                 XATTR_CREATE_),
              fail(Err::EEXIST_));
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(8),
                                 XATTR_REPLACE_),
              0);
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(4),
                                 XATTR_CREATE_ | XATTR_REPLACE_),
              fail(Err::EINVAL_));
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(4), 0x10),
              fail(Err::EINVAL_));
}

TEST_F(XattrTest, NameValidation) {
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), nullptr, value(4), 0),
              fail(Err::EFAULT_));
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "", value(4), 0),
              fail(Err::ERANGE_));
    const std::string long_name = "user." + std::string(300, 'n');
    EXPECT_EQ(
        user_.sys_setxattr(path_.c_str(), long_name.c_str(), value(4), 0),
        fail(Err::ERANGE_));
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "weird.ns", value(4), 0),
              fail(Err::EOPNOTSUPP_));
    // trusted.* needs privilege.
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "trusted.t", value(4), 0),
              fail(Err::EPERM_));
}

TEST_F(XattrTest, ValueSizeBoundaries) {
    // The maximum allowed size succeeds (the Fig. 1 boundary).
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.max",
                                 value(XATTR_SIZE_MAX_), 0),
              0);
    // One byte more is E2BIG before any fs logic runs.
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.over",
                                 value(XATTR_SIZE_MAX_ + 1), 0),
              fail(Err::E2BIG_));
    // Zero-size values are legal.
    EXPECT_EQ(user_.sys_setxattr(path_.c_str(), "user.empty", {}, 0), 0);
    EXPECT_EQ(user_.sys_getxattr(path_.c_str(), "user.empty", 0), 0);
}

TEST_F(XattrTest, LVariantsOperateOnTheLinkTarget) {
    // setxattr/getxattr follow the symlink; l* variants do not (and a
    // symlink cannot hold user.* attrs, so lsetxattr fails EPERM on
    // Linux; our model returns EPERM via the ownership check or
    // succeeds on the link inode — we model "operate on link itself").
    EXPECT_EQ(user_.sys_setxattr(link_.c_str(), "user.via", value(3), 0),
              0);
    EXPECT_EQ(user_.sys_getxattr(path_.c_str(), "user.via", 16), 3);
    // l variant touches the link inode, which has no such attr.
    EXPECT_EQ(user_.sys_lgetxattr(link_.c_str(), "user.via", 16),
              fail(Err::ENODATA_));
    EXPECT_EQ(user_.sys_lsetxattr(link_.c_str(), "user.onlink", value(2),
                                  0),
              0);
    EXPECT_EQ(user_.sys_lgetxattr(link_.c_str(), "user.onlink", 16), 2);
    EXPECT_EQ(user_.sys_getxattr(path_.c_str(), "user.onlink", 16),
              fail(Err::ENODATA_));
}

TEST_F(XattrTest, FVariantsOperateOnTheFd) {
    const auto fd = user_.sys_open(path_.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(user_.sys_fsetxattr(static_cast<int>(fd), "user.f",
                                  value(6), 0),
              0);
    EXPECT_EQ(user_.sys_fgetxattr(static_cast<int>(fd), "user.f", 16), 6);
    EXPECT_EQ(user_.sys_fgetxattr(static_cast<int>(fd), "user.f", 2),
              fail(Err::ERANGE_));
    EXPECT_EQ(user_.sys_fsetxattr(999, "user.f", value(1), 0),
              fail(Err::EBADF_));
    EXPECT_EQ(user_.sys_fgetxattr(999, "user.f", 16), fail(Err::EBADF_));
}

TEST_F(XattrTest, PathErrorsPropagate) {
    EXPECT_EQ(user_.sys_setxattr((fx_.scratch + "/no").c_str(), "user.a",
                                 value(1), 0),
              fail(Err::ENOENT_));
    EXPECT_EQ(user_.sys_getxattr(nullptr, "user.a", 16),
              fail(Err::EFAULT_));
    // Not the owner: EPERM on set.
    EXPECT_EQ(user_.sys_setxattr(fx_.plain_file.c_str(), "user.a",
                                 value(1), 0),
              fail(Err::EPERM_));
}

TEST_F(XattrTest, TraceRecordsSizeAndFlags) {
    buffer_.clear();
    user_.sys_setxattr(path_.c_str(), "user.t", value(123), XATTR_CREATE_);
    user_.sys_getxattr(path_.c_str(), "user.t", 4096);
    ASSERT_EQ(buffer_.size(), 2u);
    EXPECT_EQ(*buffer_.events()[0].uint_arg("size"), 123u);
    EXPECT_EQ(*buffer_.events()[0].int_arg("flags"), XATTR_CREATE_);
    EXPECT_EQ(*buffer_.events()[1].uint_arg("size"), 4096u);
    EXPECT_EQ(buffer_.events()[1].ret, 123);
}

TEST_F(XattrTest, ListxattrFamilyReportsNamesLength) {
    ASSERT_EQ(user_.sys_setxattr(path_.c_str(), "user.a", value(4), 0), 0);
    ASSERT_EQ(user_.sys_setxattr(path_.c_str(), "user.bb", value(4), 0), 0);
    // "user.a\0user.bb\0" = 7 + 8 bytes.
    EXPECT_EQ(user_.sys_listxattr(path_.c_str(), 0), 15);
    EXPECT_EQ(user_.sys_listxattr(path_.c_str(), 64), 15);
    EXPECT_EQ(user_.sys_listxattr(path_.c_str(), 8),
              fail(Err::ERANGE_));
    // f variant through an fd.
    const auto fd = user_.sys_open(path_.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_flistxattr(static_cast<int>(fd), 64), 15);
    EXPECT_EQ(user_.sys_flistxattr(999, 64), fail(Err::EBADF_));
    // l variant on the symlink sees the link's (empty) attr list.
    EXPECT_EQ(user_.sys_llistxattr(link_.c_str(), 64), 0);
    EXPECT_EQ(user_.sys_listxattr((fx_.scratch + "/no").c_str(), 64),
              fail(Err::ENOENT_));
}

TEST_F(XattrTest, RemovexattrFamily) {
    ASSERT_EQ(user_.sys_setxattr(path_.c_str(), "user.rm", value(4), 0),
              0);
    EXPECT_EQ(user_.sys_removexattr(path_.c_str(), "user.rm"), 0);
    EXPECT_EQ(user_.sys_removexattr(path_.c_str(), "user.rm"),
              fail(Err::ENODATA_));
    EXPECT_EQ(user_.sys_removexattr(path_.c_str(), "weird.ns"),
              fail(Err::EOPNOTSUPP_));
    // f variant.
    const auto fd = user_.sys_open(path_.c_str(), O_RDONLY);
    ASSERT_EQ(user_.sys_fsetxattr(static_cast<int>(fd), "user.frm",
                                  value(4), 0),
              0);
    EXPECT_EQ(user_.sys_fremovexattr(static_cast<int>(fd), "user.frm"), 0);
    EXPECT_EQ(user_.sys_fremovexattr(999, "user.frm"), fail(Err::EBADF_));
    // l variant acts on the link inode.
    ASSERT_EQ(user_.sys_lsetxattr(link_.c_str(), "user.lrm", value(2), 0),
              0);
    EXPECT_EQ(user_.sys_lremovexattr(link_.c_str(), "user.lrm"), 0);
    EXPECT_EQ(user_.sys_removexattr(nullptr, "user.x"),
              fail(Err::EFAULT_));
}

}  // namespace
}  // namespace iocov::syscall
