// Input/output partitioners.
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "abi/xattr.hpp"
#include "core/partition.hpp"

namespace iocov::core {
namespace {

using trace::ArgValue;

std::unique_ptr<InputPartitioner> part(const char* base, const char* key,
                                       ArgClass cls) {
    return make_input_partitioner(base, ArgSpec{key, cls});
}

TEST(OpenFlagsPartitioner, DeclaresFig2AxisAndDecomposes) {
    auto p = part("open", "flags", ArgClass::Bitmap);
    EXPECT_EQ(p->declared().size(), 20u);
    const auto labels = p->labels_for(ArgValue{
        std::uint64_t{abi::O_WRONLY | abi::O_CREAT | abi::O_TRUNC}});
    EXPECT_EQ(labels,
              (std::vector<std::string>{"O_WRONLY", "O_CREAT", "O_TRUNC"}));
}

TEST(ModeBitsPartitioner, PerBitLabels) {
    auto p = part("chmod", "mode", ArgClass::Bitmap);
    EXPECT_EQ(p->declared().size(), 13u);  // 12 bits + "none"
    const auto labels = p->labels_for(ArgValue{std::uint64_t{0640}});
    EXPECT_EQ(labels, (std::vector<std::string>{"S_IRUSR", "S_IWUSR",
                                                "S_IRGRP"}));
    EXPECT_EQ(p->labels_for(ArgValue{std::uint64_t{0}}),
              std::vector<std::string>{"none"});
    const auto setuid = p->labels_for(ArgValue{std::uint64_t{04000}});
    EXPECT_EQ(setuid, std::vector<std::string>{"S_ISUID"});
}

TEST(NumericPartitioner, DeclaresBoundariesAndBuckets) {
    auto p = part("write", "count", ArgClass::Numeric);
    const auto declared = p->declared();
    // "<0", "=0", 2^0..2^32 (the Fig. 3 x-axis).
    EXPECT_EQ(declared.size(), 2u + kNumericDeclaredMaxExp + 1);
    EXPECT_EQ(declared[0], "<0");
    EXPECT_EQ(declared[1], "=0");
    EXPECT_EQ(p->labels_for(ArgValue{std::uint64_t{0}}),
              std::vector<std::string>{"=0"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{-7}}),
              std::vector<std::string>{"<0"});
    EXPECT_EQ(p->labels_for(ArgValue{std::uint64_t{1500}}),
              std::vector<std::string>{"2^10"});
}

TEST(WhencePartitioner, NamedValuesPlusInvalid) {
    auto p = part("lseek", "whence", ArgClass::Categorical);
    EXPECT_EQ(p->declared().size(), 6u);
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{abi::SEEK_END_}}),
              std::vector<std::string>{"SEEK_END"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{42}}),
              std::vector<std::string>{"INVALID"});
}

TEST(XattrFlagsPartitioner, CategoricalValues) {
    auto p = part("setxattr", "flags", ArgClass::Categorical);
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{0}}),
              std::vector<std::string>{"0"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{abi::XATTR_CREATE_}}),
              std::vector<std::string>{"XATTR_CREATE"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{3}}),
              std::vector<std::string>{"INVALID"});
}

TEST(FdPartitioner, IdentifierClasses) {
    auto p = part("close", "fd", ArgClass::Identifier);
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{0}}),
              std::vector<std::string>{"stdio(0-2)"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{7}}),
              std::vector<std::string>{"valid(>=3)"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{5000}}),
              std::vector<std::string>{"large(>=1024)"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{-1}}),
              std::vector<std::string>{"minus-one"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{abi::AT_FDCWD}}),
              std::vector<std::string>{"AT_FDCWD"});
    EXPECT_EQ(p->labels_for(ArgValue{std::int64_t{-7}}),
              std::vector<std::string>{"other-negative"});
}

TEST(PathPartitioner, StructuralClasses) {
    auto p = part("chdir", "pathname", ArgClass::Identifier);
    auto labels = [&](const char* s) {
        return p->labels_for(ArgValue{std::string(s)});
    };
    EXPECT_EQ(labels("/mnt/test"), std::vector<std::string>{"absolute"});
    EXPECT_EQ(labels("sub"), std::vector<std::string>{"relative"});
    EXPECT_EQ(labels("."), (std::vector<std::string>{"dot", "relative"}));
    EXPECT_EQ(labels(".."),
              (std::vector<std::string>{"dotdot", "relative"}));
    EXPECT_EQ(labels("/a/"),
              (std::vector<std::string>{"absolute", "trailing-slash"}));
    EXPECT_EQ(labels("<via-fd>"), std::vector<std::string>{"via-fd"});
    EXPECT_EQ(labels("<fault>"), std::vector<std::string>{"faulting"});
    EXPECT_EQ(labels(""), std::vector<std::string>{"empty"});
    const std::string long_comp = "/" + std::string(300, 'x');
    auto ll = labels(long_comp.c_str());
    EXPECT_NE(std::find(ll.begin(), ll.end(), "name-max"), ll.end());
    const std::string long_path(5000, 'y');
    ll = labels(long_path.c_str());
    EXPECT_NE(std::find(ll.begin(), ll.end(), "path-max"), ll.end());
}

TEST(OutputPartitioner, UnitSuccessIsJustOk) {
    OutputPartitioner p(SuccessKind::Unit,
                        {abi::Err::ENOENT_, abi::Err::EACCES_});
    EXPECT_EQ(p.declared(),
              (std::vector<std::string>{"OK", "ENOENT", "EACCES"}));
    EXPECT_EQ(p.label_for(0), "OK");
    EXPECT_EQ(p.label_for(-2), "ENOENT");
}

TEST(OutputPartitioner, ByteCountSuccessSplitsByPow2) {
    OutputPartitioner p(SuccessKind::ByteCount, {abi::Err::EBADF_});
    EXPECT_EQ(p.label_for(0), "OK:=0");
    EXPECT_EQ(p.label_for(4096), "OK:2^12");
    EXPECT_EQ(p.label_for(-9), "EBADF");
    // Declared: =0 plus 2^0..2^32 plus the error.
    EXPECT_EQ(p.declared().size(), 1u + kNumericDeclaredMaxExp + 1 + 1);
}

TEST(OutputPartitioner, UndocumentedErrnoStillGetsALabel) {
    OutputPartitioner p(SuccessKind::Unit, {abi::Err::ENOENT_});
    // An errno outside the declared list labels dynamically.
    EXPECT_EQ(p.label_for(-122), "EDQUOT");
}

}  // namespace
}  // namespace iocov::core
