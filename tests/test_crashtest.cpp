// End-to-end crash tester (the `iocov crashtest` engine): enumerates
// 100+ crash points over the baseline set, is bit-identical across
// reruns of the same seed, finds the seeded skip-a-barrier bug, stays
// silent on the correct VFS, and reports bugs-per-partition-covered.
#include "testers/crash/tester.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace iocov::testers::crash {
namespace {

TEST(CrashTest, BaselineSetEnumeratesOverHundredPointsCleanly) {
    const auto report = run_crashtest({});
    EXPECT_GE(report.total_points, 100u);
    EXPECT_EQ(report.total_bugs, 0u) << report.to_string();
    EXPECT_EQ(report.workloads.size(), crashmonkey_baseline().size());
    EXPECT_GT(report.partitions_covered, 0u);
    EXPECT_DOUBLE_EQ(report.bugs_per_partition(), 0.0);
}

TEST(CrashTest, SameSeedSameCrashPointListAndVerdicts) {
    CrashTestConfig cfg;
    cfg.seed = 1234;
    const auto a = run_crashtest(cfg);
    const auto b = run_crashtest(cfg);
    ASSERT_EQ(a.workloads.size(), b.workloads.size());
    for (std::size_t i = 0; i < a.workloads.size(); ++i) {
        EXPECT_EQ(a.workloads[i].name, b.workloads[i].name);
        EXPECT_EQ(a.workloads[i].point_ids, b.workloads[i].point_ids);
        EXPECT_EQ(a.workloads[i].bugs.size(), b.workloads[i].bugs.size());
    }
    EXPECT_EQ(a.to_string(), b.to_string());
    EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(CrashTest, SeededSkipBarrierBugIsFound) {
    CrashTestConfig cfg;
    cfg.inject_skip_barrier = 0;
    const auto report = run_crashtest(cfg);
    EXPECT_GT(report.total_bugs, 0u);
    // Every bug names its workload, crash point and replay recipe.
    for (const auto& wl : report.workloads)
        for (const auto& bug : wl.bugs) {
            EXPECT_EQ(bug.workload, wl.name);
            EXPECT_FALSE(bug.crash_point.empty());
            EXPECT_NE(bug.recipe.find("crashtest"), std::string::npos);
            EXPECT_NE(bug.recipe.find(bug.workload), std::string::npos);
            EXPECT_NE(bug.recipe.find("--inject-skip-barrier"),
                      std::string::npos);
        }
}

TEST(CrashTest, WorkloadFilterAndBoundKnobsApply) {
    CrashTestConfig cfg;
    cfg.workloads = {"create_fsync", "rename_commit"};
    cfg.reorder_variants = 1;
    cfg.torn_writes = false;
    cfg.max_points_per_workload = 6;
    const auto report = run_crashtest(cfg);
    ASSERT_EQ(report.workloads.size(), 2u);
    std::set<std::string> names;
    for (const auto& wl : report.workloads) {
        names.insert(wl.name);
        EXPECT_LE(wl.points, 6u);
        for (const auto& id : wl.point_ids) {
            EXPECT_EQ(id.find("+torn"), std::string::npos);
            EXPECT_EQ(id.find("+shuf2"), std::string::npos);
        }
    }
    EXPECT_TRUE(names.count("create_fsync"));
    EXPECT_TRUE(names.count("rename_commit"));
}

TEST(CrashTest, GreedyOrderFrontLoadsNewPartitions) {
    const auto report = run_crashtest({});
    ASSERT_GE(report.workloads.size(), 2u);
    // The first workload contributes the most marginal coverage; every
    // later workload contributes no more new partitions than the first.
    const std::size_t first = report.workloads.front().new_partitions;
    std::size_t sum = 0;
    for (const auto& wl : report.workloads) {
        EXPECT_LE(wl.new_partitions, first);
        EXPECT_LE(wl.new_partitions, wl.covered_partitions);
        sum += wl.new_partitions;
    }
    // Marginal contributions sum to the union coverage.
    EXPECT_EQ(sum, report.partitions_covered);
}

TEST(CrashTest, ReportRendersTableAndJson) {
    CrashTestConfig cfg;
    cfg.workloads = {"create_fsync"};
    const auto report = run_crashtest(cfg);
    const auto table = report.to_string();
    EXPECT_NE(table.find("bugs-per-partition"), std::string::npos);
    EXPECT_NE(table.find("create_fsync"), std::string::npos);
    EXPECT_NE(table.find("remaining gaps"), std::string::npos);
    const auto json = report.to_json();
    EXPECT_NE(json.find("\"total_points\""), std::string::npos);
    EXPECT_NE(json.find("\"point_ids\""), std::string::npos);
    EXPECT_NE(json.find("\"p0+none\""), std::string::npos);
}

}  // namespace
}  // namespace iocov::testers::crash
