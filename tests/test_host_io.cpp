// host::io durability primitives: atomic create/replace semantics,
// temp-file hygiene, the bounded transient-retry policy, structured
// IoError contents, the FaultHook spec parser, and the MappedFile
// read()-fallback retry/shrank behavior — all driven through the
// self-fault hook so injected errnos travel the same code paths real
// kernel failures would.
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "host/fault.hpp"
#include "host/io.hpp"
#include "trace/binary_format.hpp"

namespace iocov::host {
namespace {

namespace fs = std::filesystem;

/// Fast retries so exhaustion tests do not sleep through real backoff.
WriteOptions fast_opts() {
    WriteOptions opts;
    opts.retry = RetryPolicy{3, 1, 2};
    return opts;
}

std::string read_all(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::size_t temp_debris(const fs::path& dir) {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.path().filename().string().find(".tmp.") != std::string::npos)
            ++n;
    return n;
}

/// Every test starts and ends with no armed fault clauses.
class HostIo : public ::testing::Test {
  protected:
    void SetUp() override {
        FaultHook::reset();
        dir_ = fs::temp_directory_path() /
               ("iocov_hostio_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }
    void TearDown() override {
        FaultHook::reset();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string target(const char* name = "out.bin") const {
        return (dir_ / name).string();
    }
    fs::path dir_;
};

TEST_F(HostIo, AtomicWriteCreatesFileWithNoTempResidue) {
    const std::string path = target();
    ASSERT_EQ(write_file_atomic(path, "hello artifact"), std::nullopt);
    EXPECT_EQ(read_all(path), "hello artifact");
    EXPECT_EQ(temp_debris(dir_), 0u);
}

TEST_F(HostIo, AtomicWriteReplacesExistingContent) {
    const std::string path = target();
    ASSERT_EQ(write_file_atomic(path, "old"), std::nullopt);
    ASSERT_EQ(write_file_atomic(path, "replacement bytes"), std::nullopt);
    EXPECT_EQ(read_all(path), "replacement bytes");
}

TEST_F(HostIo, EmptyPayloadIsAValidArtifact) {
    const std::string path = target();
    ASSERT_EQ(write_file_atomic(path, ""), std::nullopt);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_EQ(fs::file_size(path), 0u);
}

TEST_F(HostIo, FailedWritePreservesPriorAndCleansTemp) {
    const std::string path = target();
    ASSERT_EQ(write_file_atomic(path, "prior complete artifact"),
              std::nullopt);

    ASSERT_EQ(FaultHook::configure("errno:write:ENOSPC:1"), std::nullopt);
    const IoStatus st = write_file_atomic(path, "doomed", fast_opts());
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->phase, IoPhase::Write);
    EXPECT_EQ(st->err, ENOSPC);
    EXPECT_EQ(st->path, path);  // artifact path, not the temp name
    // The durability oracle: destination untouched, temp unlinked.
    EXPECT_EQ(read_all(path), "prior complete artifact");
    EXPECT_EQ(temp_debris(dir_), 0u);
}

TEST_F(HostIo, EveryWritePhaseFailurePreservesPrior) {
    const std::string path = target();
    for (const char* phase :
         {"temp-create", "write", "sync", "close", "rename", "dirsync"}) {
        ASSERT_EQ(write_file_atomic(path, "prior"), std::nullopt);
        FaultHook::reset();
        ASSERT_EQ(FaultHook::configure(std::string("errno:") + phase +
                                       ":EIO:1"),
                  std::nullopt);
        const IoStatus st = write_file_atomic(path, "new", fast_opts());
        FaultHook::reset();
        ASSERT_TRUE(st.has_value()) << phase;
        EXPECT_EQ(st->err, EIO) << phase;
        EXPECT_EQ(phase_name(st->phase), phase);
        // rename/dirsync fire after the destination swap is allowed to
        // be in flight; everything earlier must leave the prior bytes.
        if (st->phase != IoPhase::Rename && st->phase != IoPhase::DirSync) {
            EXPECT_EQ(read_all(path), "prior") << phase;
        }
        EXPECT_EQ(temp_debris(dir_), 0u) << phase;
    }
}

TEST_F(HostIo, EintrIsRetriedToSuccess) {
    ASSERT_EQ(FaultHook::configure("errno:write:EINTR:1,errno:sync:EINTR:1,"
                                   "errno:rename:EINTR:1"),
              std::nullopt);
    const std::string path = target();
    EXPECT_EQ(write_file_atomic(path, "interrupted but fine", fast_opts()),
              std::nullopt);
    EXPECT_EQ(read_all(path), "interrupted but fine");
}

TEST_F(HostIo, EagainExhaustionIsBoundedAndCounted) {
    // k == 0 arms the clause for *every* matching op: the retry policy
    // must give up after max_retries instead of spinning forever.
    ASSERT_EQ(FaultHook::configure("errno:write:EAGAIN:0"), std::nullopt);
    const IoStatus st = write_file_atomic(target(), "never", fast_opts());
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->err, EAGAIN);
    EXPECT_EQ(st->phase, IoPhase::Write);
    EXPECT_EQ(st->retries, fast_opts().retry.max_retries);
}

TEST_F(HostIo, ShortWritesLoopToCompletion) {
    // Halve the first few write()s: the writer must loop until all
    // bytes land, never treating a short write as success or failure.
    ASSERT_EQ(FaultHook::configure("short:1,short:2,short:3,short:4"),
              std::nullopt);
    const std::string payload(4096, 'x');
    const std::string path = target();
    ASSERT_EQ(write_file_atomic(path, payload), std::nullopt);
    EXPECT_EQ(read_all(path), payload);
}

TEST_F(HostIo, MissingDirectoryIsStructuredTempCreateError) {
    const IoStatus st = write_file_atomic(
        (dir_ / "no-such-subdir" / "out.bin").string(), "x");
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->phase, IoPhase::TempCreate);
    EXPECT_EQ(st->err, ENOENT);
    const std::string msg = st->to_string();
    EXPECT_NE(msg.find("temp-create"), std::string::npos) << msg;
    EXPECT_NE(msg.find("out.bin"), std::string::npos) << msg;
}

TEST_F(HostIo, AbortedWriterLeavesNoTrace) {
    const std::string path = target();
    ASSERT_EQ(write_file_atomic(path, "prior"), std::nullopt);
    {
        AtomicWriter w;
        ASSERT_EQ(w.open(path), std::nullopt);
        ASSERT_EQ(w.write("half an arti"), std::nullopt);
        EXPECT_FALSE(w.committed());
        // Destructor aborts the uncommitted write.
    }
    EXPECT_EQ(read_all(path), "prior");
    EXPECT_EQ(temp_debris(dir_), 0u);
}

TEST_F(HostIo, PhaseNamesRoundTrip) {
    for (const auto phase :
         {IoPhase::TempCreate, IoPhase::Write, IoPhase::Sync,
          IoPhase::Close, IoPhase::Rename, IoPhase::DirOpen,
          IoPhase::DirSync, IoPhase::Open, IoPhase::Stat, IoPhase::Read}) {
        const auto back = phase_from_name(phase_name(phase));
        ASSERT_TRUE(back.has_value()) << phase_name(phase);
        EXPECT_EQ(*back, phase);
    }
    EXPECT_FALSE(phase_from_name("frobnicate").has_value());
}

TEST_F(HostIo, TransientErrnoClassification) {
    EXPECT_TRUE(transient_errno(EINTR));
    EXPECT_TRUE(transient_errno(EAGAIN));
    EXPECT_FALSE(transient_errno(ENOSPC));
    EXPECT_FALSE(transient_errno(EIO));
    EXPECT_FALSE(transient_errno(0));
}

TEST_F(HostIo, FaultSpecParserAcceptsTheDocumentedGrammar) {
    for (const char* good :
         {"errno:write:ENOSPC:1", "errno:any:EIO:0", "errno:sync:5:2",
          "short:3", "eof:1", "kill:rename:2", "kill:write:1:17",
          "errno:write:ENOSPC:1,short:2,eof:1"}) {
        EXPECT_EQ(FaultHook::configure(good), std::nullopt) << good;
        FaultHook::reset();
    }
}

TEST_F(HostIo, FaultSpecParserRejectsMalformedClauses) {
    for (const char* bad :
         {"bogus", "errno:write:NOTANERRNO:1", "errno:nophase:EIO:1",
          "errno:write:ENOSPC", "short:", "short:x", "short:0",
          "eof:0", "kill:write", "kill:sync:1:17", "eof"}) {
        EXPECT_NE(FaultHook::configure(bad), std::nullopt) << bad;
        FaultHook::reset();
    }
}

TEST_F(HostIo, ErrnoNameParsing) {
    EXPECT_EQ(parse_errno_name("ENOSPC"), ENOSPC);
    EXPECT_EQ(parse_errno_name("EINTR"), EINTR);
    EXPECT_EQ(parse_errno_name("5"), 5);
    EXPECT_EQ(parse_errno_name("EWHATEVER"), 0);
}

TEST_F(HostIo, FaultHookCountsOpsPerPhase) {
    ASSERT_EQ(FaultHook::configure("errno:write:ENOSPC:999999"),
              std::nullopt);  // armed but never firing: counting only
    const auto before = FaultHook::ops(IoPhase::Write);
    ASSERT_EQ(write_file_atomic(target(), "count me"), std::nullopt);
    EXPECT_GT(FaultHook::ops(IoPhase::Write), before);
    EXPECT_GT(FaultHook::total_ops(), 0u);
}

// ---- MappedFile read()-fallback --------------------------------------------

TEST_F(HostIo, MappedFileReadCopyLoadsBytes) {
    const std::string path = target("trace.bin");
    ASSERT_EQ(write_file_atomic(path, "some trace bytes"), std::nullopt);
    host::IoError err;
    const auto mf =
        trace::MappedFile::open(path, trace::MappedFile::Mode::ReadCopy, &err);
    ASSERT_TRUE(mf.has_value()) << err.to_string();
    EXPECT_FALSE(mf->mmapped());
    EXPECT_FALSE(mf->shrank());
    EXPECT_EQ(mf->data(), "some trace bytes");
}

TEST_F(HostIo, MappedFileRetriesEintrDuringRead) {
    const std::string path = target("trace.bin");
    ASSERT_EQ(write_file_atomic(path, "interrupted read"), std::nullopt);
    ASSERT_EQ(FaultHook::configure("errno:read:EINTR:1,errno:open:EINTR:1,"
                                   "errno:stat:EINTR:1"),
              std::nullopt);
    host::IoError err;
    const auto mf =
        trace::MappedFile::open(path, trace::MappedFile::Mode::ReadCopy, &err);
    ASSERT_TRUE(mf.has_value()) << err.to_string();
    EXPECT_EQ(mf->data(), "interrupted read");
}

TEST_F(HostIo, MappedFileReadErrorIsStructuredNotShrank) {
    const std::string path = target("trace.bin");
    ASSERT_EQ(write_file_atomic(path, "doomed read"), std::nullopt);
    ASSERT_EQ(FaultHook::configure("errno:read:EIO:1"), std::nullopt);
    host::IoError err;
    const auto mf =
        trace::MappedFile::open(path, trace::MappedFile::Mode::ReadCopy, &err);
    EXPECT_FALSE(mf.has_value());
    EXPECT_EQ(err.phase, IoPhase::Read);
    EXPECT_EQ(err.err, EIO);
    EXPECT_EQ(err.path, path);
}

TEST_F(HostIo, MappedFileShrinkingFileKeepsPartialAndFlagsShrank) {
    const std::string path = target("trace.bin");
    ASSERT_EQ(write_file_atomic(path, "prefix is still useful"),
              std::nullopt);
    // Force EOF on the very first read(): the fstat'd size was a lie,
    // the file "shrank" to nothing.  Distinct from a read *error*.
    ASSERT_EQ(FaultHook::configure("eof:1"), std::nullopt);
    host::IoError err;
    const auto mf =
        trace::MappedFile::open(path, trace::MappedFile::Mode::ReadCopy, &err);
    ASSERT_TRUE(mf.has_value()) << err.to_string();
    EXPECT_TRUE(mf->shrank());
    EXPECT_LT(mf->data().size(), std::string("prefix is still useful").size());
}

TEST_F(HostIo, MappedFileMissingFileIsOpenPhase) {
    host::IoError err;
    const auto mf = trace::MappedFile::open(
        target("never-written.bin"), trace::MappedFile::Mode::Auto, &err);
    EXPECT_FALSE(mf.has_value());
    EXPECT_EQ(err.phase, IoPhase::Open);
    EXPECT_EQ(err.err, ENOENT);
}

// ---- fd/pipe/socket I/O -----------------------------------------------

TEST_F(HostIo, WriteFdRoundTripsThroughAPipe) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    EXPECT_EQ(write_fd(fds[1], "framed bytes"), std::nullopt);
    std::string got;
    EXPECT_EQ(read_fd(fds[0], 12, got), std::nullopt);
    EXPECT_EQ(got, "framed bytes");
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST_F(HostIo, WriteToClosedPipeIsEpipeNotDeath) {
    // The bug this pins down: without ignore_sigpipe(), writing to a
    // pipe whose read end closed (`iocov analyze | head`, or a serve
    // client disconnecting mid-response) killed the whole process with
    // SIGPIPE.  With it, the write fails with a structured EPIPE.
    ignore_sigpipe();
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ::close(fds[0]);  // reader goes away
    const auto err = write_fd(fds[1], "nobody is listening",
                              IoPhase::SockWrite, RetryPolicy{3, 1, 2},
                              "pipe");
    ASSERT_TRUE(err.has_value()) << "process survived, but the write "
                                    "must report the lost consumer";
    EXPECT_EQ(err->phase, IoPhase::SockWrite);
    EXPECT_EQ(err->err, EPIPE);
    EXPECT_EQ(err->path, "pipe");
    ::close(fds[1]);
}

TEST_F(HostIo, ReadFdEarlyEofIsATornReadWithErrZero) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(write_fd(fds[1], "short"), std::nullopt);
    ::close(fds[1]);  // writer quits mid-message
    std::string got;
    const auto err = read_fd(fds[0], 64, got);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->phase, IoPhase::SockRead);
    EXPECT_EQ(err->err, 0) << "EOF is not an errno";
    EXPECT_EQ(got, "short") << "the torn prefix is still delivered";
    ::close(fds[0]);
}

TEST_F(HostIo, FdIoConsultsTheFaultHookAtSocketPhases) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // EIO is not transient: the first injected failure must surface
    // immediately as a structured error under the right phase.
    ASSERT_EQ(FaultHook::configure("errno:sock-write:EIO:0"),
              std::nullopt);
    const auto werr = write_fd(fds[1], "payload", IoPhase::SockWrite,
                               RetryPolicy{3, 1, 2}, "sock");
    ASSERT_TRUE(werr.has_value());
    EXPECT_EQ(werr->phase, IoPhase::SockWrite);
    EXPECT_EQ(werr->err, EIO);
    FaultHook::reset();
    ASSERT_EQ(FaultHook::configure("errno:sock-read:ECONNRESET:0"),
              std::nullopt);
    std::string got;
    const auto rerr = read_fd(fds[0], 4, got, IoPhase::SockRead,
                              RetryPolicy{3, 1, 2}, "sock");
    ASSERT_TRUE(rerr.has_value());
    EXPECT_EQ(rerr->phase, IoPhase::SockRead);
    EXPECT_EQ(rerr->err, ECONNRESET);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST_F(HostIo, FdIoRetriesTransientErrnosToSuccess) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // Two EINTRs then clean: the standard policy absorbs them.
    ASSERT_EQ(FaultHook::configure(
                  "errno:sock-write:EINTR:1,errno:sock-write:EINTR:2"),
              std::nullopt);
    const auto err = write_fd(fds[1], "eventually lands",
                              IoPhase::SockWrite, RetryPolicy{5, 1, 2},
                              "sock");
    EXPECT_EQ(err, std::nullopt);
    std::string got;
    EXPECT_EQ(read_fd(fds[0], 16, got), std::nullopt);
    EXPECT_EQ(got, "eventually lands");
    ::close(fds[0]);
    ::close(fds[1]);
}

}  // namespace
}  // namespace iocov::host
