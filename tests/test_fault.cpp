// FaultInjector semantics: one-shot queueing, skip counting, periodic
// and seeded probabilistic modes, fired-fault statistics, ScopedFault.
#include "vfs/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace iocov::vfs {
namespace {

using abi::Err;

TEST(FaultInjector, OneShotFiresExactlyOnce) {
    FaultInjector fi;
    fi.arm("open", Err::EIO_);
    EXPECT_EQ(fi.check("read"), std::nullopt);  // other ops pass through
    EXPECT_EQ(fi.check("open"), Err::EIO_);
    EXPECT_EQ(fi.check("open"), std::nullopt);  // consumed
    EXPECT_TRUE(fi.empty());
}

TEST(FaultInjector, SkipCountsMatchingCallsOnly) {
    FaultInjector fi;
    fi.arm("write", Err::ENOSPC_, 2);
    EXPECT_EQ(fi.check("read"), std::nullopt);   // non-matching: no decrement
    EXPECT_EQ(fi.check("write"), std::nullopt);  // skip 2 -> 1
    EXPECT_EQ(fi.check("write"), std::nullopt);  // skip 1 -> 0
    EXPECT_EQ(fi.check("write"), Err::ENOSPC_);
    EXPECT_EQ(fi.check("write"), std::nullopt);
}

TEST(FaultInjector, QueuedOneShotsFireConsecutivelyNotTogether) {
    // Regression: a single call must only be counted against the
    // frontmost matching entry.  Two "*" one-shots armed with skip 1
    // fire on the 2nd and 3rd calls — with the old behaviour (every
    // entry decremented per call) both would fire on the 2nd.
    FaultInjector fi;
    fi.arm("*", Err::EIO_, 1);
    fi.arm("*", Err::ENOMEM_, 1);
    EXPECT_EQ(fi.check("open"), std::nullopt);  // consumes front's skip
    EXPECT_EQ(fi.check("open"), Err::EIO_);
    EXPECT_EQ(fi.check("open"), std::nullopt);  // consumes second's skip
    EXPECT_EQ(fi.check("open"), Err::ENOMEM_);
}

TEST(FaultInjector, WildcardMatchesAnyOperation) {
    FaultInjector fi;
    fi.arm("*", Err::EINTR_);
    EXPECT_EQ(fi.check("fsync"), Err::EINTR_);
}

TEST(FaultInjector, DisarmRemovesExactMatchOnly) {
    FaultInjector fi;
    fi.arm("open", Err::EIO_);
    EXPECT_FALSE(fi.disarm("open", Err::ENOMEM_));  // wrong errno
    EXPECT_FALSE(fi.disarm("read", Err::EIO_));     // wrong op
    EXPECT_TRUE(fi.disarm("open", Err::EIO_));
    EXPECT_EQ(fi.check("open"), std::nullopt);
    EXPECT_FALSE(fi.disarm("open", Err::EIO_));  // already gone
}

TEST(FaultInjector, PeriodicFiresEveryNthMatchingCall) {
    FaultInjector fi;
    fi.arm_periodic("read", Err::EIO_, 3);
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i) fired.push_back(fi.check("read").has_value());
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
}

TEST(FaultInjector, ProbabilisticIsDeterministicUnderSeed) {
    auto pattern = [](std::uint64_t seed) {
        FaultInjector fi;
        fi.arm_probabilistic("*", Err::ENOMEM_, 300, seed);
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i)
            fired.push_back(fi.check("write").has_value());
        return fired;
    };
    EXPECT_EQ(pattern(7), pattern(7));
    EXPECT_NE(pattern(7), pattern(8));
}

TEST(FaultInjector, ProbabilisticExtremes) {
    FaultInjector always, never;
    always.arm_probabilistic("*", Err::EIO_, 1000, 1);
    never.arm_probabilistic("*", Err::EIO_, 0, 1);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(always.check("open"), Err::EIO_);
        EXPECT_EQ(never.check("open"), std::nullopt);
    }
}

TEST(FaultInjector, StatsRecordActualOpSortedByOpThenErrno) {
    FaultInjector fi;
    fi.arm("*", Err::ENOMEM_);
    fi.arm("open", Err::EIO_);
    fi.arm_periodic("open", Err::EIO_, 1);
    EXPECT_EQ(fi.check("write"), Err::ENOMEM_);  // "*" records "write"
    EXPECT_EQ(fi.check("open"), Err::EIO_);      // one-shot
    EXPECT_EQ(fi.check("open"), Err::EIO_);      // periodic
    const auto stats = fi.stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].op, "open");
    EXPECT_EQ(stats[0].err, Err::EIO_);
    EXPECT_EQ(stats[0].count, 2u);
    EXPECT_EQ(stats[1].op, "write");
    EXPECT_EQ(stats[1].err, Err::ENOMEM_);
    EXPECT_EQ(stats[1].count, 1u);
    EXPECT_EQ(fi.fired_total(), 3u);
    EXPECT_EQ(fi.fired("open", Err::EIO_), 2u);
    EXPECT_EQ(fi.fired("open", Err::ENOMEM_), 0u);
    fi.clear_stats();
    EXPECT_TRUE(fi.stats().empty());
    EXPECT_EQ(fi.fired_total(), 0u);
}

TEST(ScopedFault, DisarmsOnDestructionWhenUnfired) {
    FaultInjector fi;
    {
        ScopedFault guard(fi, "open", Err::EIO_);
        EXPECT_FALSE(guard.fired());
    }
    EXPECT_TRUE(fi.empty());  // no leak into later calls
    EXPECT_EQ(fi.check("open"), std::nullopt);
}

TEST(ScopedFault, ReportsFiredAndLeavesStatsIntact) {
    FaultInjector fi;
    {
        ScopedFault guard(fi, "open", Err::EIO_);
        EXPECT_EQ(fi.check("open"), Err::EIO_);
        EXPECT_TRUE(guard.fired());
    }
    EXPECT_EQ(fi.fired("open", Err::EIO_), 1u);
}

TEST(ScopedFault, FiredIsScopedToThisGuardNotHistory) {
    FaultInjector fi;
    fi.arm("open", Err::EIO_);
    EXPECT_EQ(fi.check("open"), Err::EIO_);  // history: one prior firing
    {
        ScopedFault guard(fi, "open", Err::EIO_);
        EXPECT_FALSE(guard.fired());  // prior firing must not count
    }
    EXPECT_TRUE(fi.empty());
}

}  // namespace
}  // namespace iocov::vfs
