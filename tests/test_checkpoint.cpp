// IOCK checkpoint manifests and the IncrementalMerge forest: round
// trips, all-or-nothing decode under truncation/corruption, and the
// headline resumability claim — finishing from a checkpoint taken at
// *any* point yields bytes identical to merge_snapshots over the full
// input, including the float-sensitive ingest.seconds sum.
#include <unistd.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/iocov.hpp"
#include "core/snapshot.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/binary_format.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::core {
namespace {

trace::FilterConfig config() {
    return trace::FilterConfig::mount_point("/mnt/test");
}

std::vector<trace::TraceEvent> generator_trace(double scale,
                                               std::uint64_t seed) {
    vfs::FileSystem fss(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fss, "/mnt/test");
    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fss, &buffer);
    testers::run_xfstests(kernel, fx, scale, seed);
    return buffer.take_events();
}

/// `n` shard snapshots of one workload with *varied non-zero*
/// ingest.seconds — float addition is the one non-associative merge
/// field, so identical-seconds fixtures would hide any tree-shape
/// divergence between IncrementalMerge and merge_snapshots.
std::vector<IOCovSnapshot> make_leaves(std::size_t n, std::uint64_t seed) {
    const auto events = generator_trace(0.03, seed);
    std::vector<std::vector<trace::TraceEvent>> parts(n);
    for (std::size_t i = 0; i < events.size(); ++i)
        parts[i % n].push_back(events[i]);

    std::vector<IOCovSnapshot> leaves;
    for (std::size_t i = 0; i < n; ++i) {
        IOCov shard(config());
        shard.consume_binary(trace::encode_trace(parts[i]));
        auto snap = shard.snapshot();
        // Deliberately awkward doubles: (a+b)+c != a+(b+c) for these.
        snap.ingest.seconds = 0.1 + 0.0173 * static_cast<double>(i + 1);
        snap.label = "shard";
        snap.timestamp = 2000 + i;
        leaves.push_back(std::move(snap));
    }
    return leaves;
}

std::vector<NamedSnapshot> named(const std::vector<IOCovSnapshot>& leaves) {
    std::vector<NamedSnapshot> out;
    for (std::size_t i = 0; i < leaves.size(); ++i)
        out.push_back({"shard" + std::to_string(i) + ".iocs", leaves[i]});
    return out;
}

Checkpoint sample_checkpoint(const std::vector<IOCovSnapshot>& leaves) {
    Checkpoint cp;
    cp.mode = CheckpointMode::Merge;
    cp.consumed = {"a.iocs", "b.iocs", "README.md"};
    cp.rejected = 1;
    cp.bytes = 123456789;
    cp.diags.record(0, 42, "not a snapshot", "hello");
    cp.diags.record(7, 99, "version skew: file is v9");
    cp.diags.count_only(3);
    IncrementalMerge fold;
    for (const auto& leaf : leaves) fold.push(leaf);
    cp.blocks = fold.blocks();
    return cp;
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
    const auto leaves = make_leaves(3, 31);
    const Checkpoint cp = sample_checkpoint(leaves);

    const std::string bytes = encode_checkpoint(cp);
    ASSERT_TRUE(is_iock(bytes));
    EXPECT_FALSE(is_iock("IOCS not a manifest"));

    SnapshotError err;
    const auto back = decode_checkpoint(bytes, &err);
    ASSERT_TRUE(back.has_value()) << err.to_string();
    EXPECT_EQ(back->mode, CheckpointMode::Merge);
    EXPECT_EQ(back->consumed, cp.consumed);
    EXPECT_EQ(back->rejected, 1u);
    EXPECT_EQ(back->bytes, 123456789u);
    EXPECT_EQ(back->diags.total(), 5u);  // 2 retained + 3 count-only
    ASSERT_EQ(back->diags.entries().size(), 2u);
    EXPECT_EQ(back->diags.entries()[0].offset, 42u);
    EXPECT_EQ(back->diags.entries()[0].reason, "not a snapshot");
    EXPECT_EQ(back->diags.entries()[0].excerpt, "hello");
    EXPECT_EQ(back->diags.entries()[1].line, 7u);
    EXPECT_EQ(back->blocks, cp.blocks);

    // Deterministic: re-encoding the decoded value reproduces the bytes.
    EXPECT_EQ(encode_checkpoint(*back), bytes);
}

TEST(Checkpoint, AnalyzeModeAndEmptyStateRoundTrip) {
    Checkpoint cp;
    cp.mode = CheckpointMode::Analyze;
    const auto back = decode_checkpoint(encode_checkpoint(cp));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->mode, CheckpointMode::Analyze);
    EXPECT_TRUE(back->consumed.empty());
    EXPECT_TRUE(back->blocks.empty());
    EXPECT_EQ(back->diags.total(), 0u);
}

TEST(Checkpoint, EveryTruncationFailsToDecode) {
    const auto leaves = make_leaves(2, 32);
    const std::string bytes = encode_checkpoint(sample_checkpoint(leaves));
    // A manifest is resume *state*: any prefix must be rejected whole,
    // or resume would silently double-count inputs.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        SnapshotError err;
        EXPECT_FALSE(
            decode_checkpoint({bytes.data(), len}, &err).has_value())
            << "decoded a " << len << "-byte prefix of "
            << bytes.size() << " bytes";
    }
}

TEST(Checkpoint, EveryBitFlipFailsToDecode) {
    Checkpoint cp;
    cp.consumed = {"x.iocs"};
    const std::string bytes = encode_checkpoint(cp);
    // Small manifest, so exhaustive single-bit corruption is cheap.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = bytes;
            bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
            SnapshotError err;
            EXPECT_FALSE(decode_checkpoint(bad, &err).has_value())
                << "byte " << i << " bit " << bit;
        }
    }
}

TEST(Checkpoint, EmbeddedBlockDamageIsAnchoredAndLabeled) {
    const auto leaves = make_leaves(1, 33);
    Checkpoint cp;
    cp.blocks = {{1, leaves[0]}};
    std::string bytes = encode_checkpoint(cp);
    // Flip one byte inside the embedded IOCS payload (well past the
    // envelope header) and confirm the error names the embedded block.
    const std::size_t target = bytes.find("IOCS");
    ASSERT_NE(target, std::string::npos);
    bytes[target + 40] = static_cast<char>(bytes[target + 40] ^ 0x10);
    SnapshotError err;
    EXPECT_FALSE(decode_checkpoint(bytes, &err).has_value());
    EXPECT_NE(err.reason.find("embedded block snapshot"),
              std::string::npos)
        << err.to_string();
    EXPECT_GE(err.offset, target);  // anchored to the file, not the block
}

TEST(Checkpoint, WrongMagicAndVersionAreStructured) {
    SnapshotError err;
    EXPECT_FALSE(decode_checkpoint("not a manifest at all", &err));
    EXPECT_EQ(err.kind, SnapshotError::Kind::Corrupt);

    Checkpoint cp;
    std::string skewed = encode_checkpoint(cp);
    skewed[4] = 9;  // version byte
    EXPECT_FALSE(decode_checkpoint(skewed, &err));
    EXPECT_NE(err.reason.find("version"), std::string::npos)
        << err.to_string();
}

TEST(Checkpoint, SaveLoadFileRoundTripAndMissingFile) {
    const auto leaves = make_leaves(2, 34);
    const Checkpoint cp = sample_checkpoint(leaves);
    const std::string path = "/tmp/iocov_ck_rt_" +
                             std::to_string(::getpid()) + ".iock";
    SnapshotError err;
    ASSERT_TRUE(save_checkpoint_file(path, cp, &err)) << err.to_string();
    const auto back = load_checkpoint_file(path, &err);
    ASSERT_TRUE(back.has_value()) << err.to_string();
    EXPECT_EQ(back->blocks, cp.blocks);
    EXPECT_EQ(back->consumed, cp.consumed);
    ::unlink(path.c_str());

    EXPECT_FALSE(load_checkpoint_file(path, &err).has_value());
    EXPECT_EQ(err.kind, SnapshotError::Kind::Io);
    EXPECT_NE(err.io_errno, 0);
}

TEST(IncrementalMergeTest, ForestShapeIsBinaryCounter) {
    const auto leaves = make_leaves(13, 35);
    IncrementalMerge fold;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        fold.push(leaves[i]);
        const std::uint64_t n = i + 1;
        // Block count == popcount(n); sizes are n's binary digits,
        // largest first.
        std::size_t popcount = 0;
        for (std::uint64_t v = n; v; v >>= 1) popcount += v & 1;
        ASSERT_EQ(fold.blocks().size(), popcount) << "after " << n;
        ASSERT_EQ(fold.leaves(), n);
        std::uint64_t sum = 0, prev = ~0ull;
        for (const auto& b : fold.blocks()) {
            EXPECT_LT(b.leaves, prev) << "after " << n;
            prev = b.leaves;
            sum += b.leaves;
        }
        EXPECT_EQ(sum, n);
    }
}

TEST(IncrementalMergeTest, MatchesMergeSnapshotsBytesForEveryN) {
    // The headline claim: the incremental fold reproduces the exact
    // pairwise merge tree of merge_snapshots, byte-for-byte — which
    // only holds if the forest fold order matches, because the double
    // ingest.seconds sum is tree-shape sensitive.
    const auto all = make_leaves(17, 36);
    for (std::size_t n = 0; n <= all.size(); ++n) {
        const std::vector<IOCovSnapshot> leaves(all.begin(),
                                                all.begin() + n);
        const auto want =
            encode_snapshot(merge_snapshots(named(leaves), 1));
        IncrementalMerge fold;
        for (const auto& leaf : leaves) fold.push(leaf);
        EXPECT_EQ(encode_snapshot(fold.finish()), want) << "n=" << n;
    }
}

TEST(IncrementalMergeTest, ResumeAtEveryPointIsByteIdentical) {
    const auto leaves = make_leaves(11, 37);
    IncrementalMerge full;
    for (const auto& leaf : leaves) full.push(leaf);
    const auto want = encode_snapshot(full.finish());

    // Checkpoint after k leaves, restore into a fresh instance, push
    // the rest: identical bytes for every interruption point.
    for (std::size_t k = 0; k <= leaves.size(); ++k) {
        IncrementalMerge before;
        for (std::size_t i = 0; i < k; ++i) before.push(leaves[i]);
        std::vector<MergeBlock> saved = before.blocks();

        IncrementalMerge resumed;
        resumed.restore(std::move(saved));
        EXPECT_EQ(resumed.leaves(), k);
        for (std::size_t i = k; i < leaves.size(); ++i)
            resumed.push(leaves[i]);
        EXPECT_EQ(encode_snapshot(resumed.finish()), want) << "k=" << k;
    }
}

TEST(IncrementalMergeTest, CheckpointRoundTripPreservesForest) {
    // The forest survives an encode/decode cycle (what a real resume
    // does), not just an in-memory restore.
    const auto leaves = make_leaves(7, 38);
    IncrementalMerge full;
    for (const auto& leaf : leaves) full.push(leaf);
    const auto want = encode_snapshot(full.finish());

    IncrementalMerge before;
    for (std::size_t i = 0; i < 5; ++i) before.push(leaves[i]);
    Checkpoint cp;
    cp.blocks = before.blocks();
    const auto back = decode_checkpoint(encode_checkpoint(cp));
    ASSERT_TRUE(back.has_value());

    IncrementalMerge resumed;
    resumed.restore(back->blocks);
    for (std::size_t i = 5; i < leaves.size(); ++i)
        resumed.push(leaves[i]);
    EXPECT_EQ(encode_snapshot(resumed.finish()), want);
}

TEST(IncrementalMergeTest, EmptyFinishIsEmptySnapshot) {
    IncrementalMerge fold;
    EXPECT_EQ(fold.leaves(), 0u);
    EXPECT_EQ(fold.finish(), IOCovSnapshot{});
}

}  // namespace
}  // namespace iocov::core
