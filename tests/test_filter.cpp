#include "trace/filter.hpp"

#include <gtest/gtest.h>

#include "abi/fcntl.hpp"

namespace iocov::trace {
namespace {

TraceEvent ev_open(const std::string& path, std::int64_t ret,
                   std::uint32_t pid = 1) {
    TraceEvent ev;
    ev.pid = pid;
    ev.tid = pid;
    ev.syscall = "open";
    ev.args = {{"pathname", ArgValue{path}},
               {"flags", ArgValue{std::uint64_t{0}}},
               {"mode", ArgValue{std::uint64_t{0}}}};
    ev.ret = ret;
    return ev;
}

TraceEvent ev_fd(const std::string& syscall, std::int64_t fd,
                 std::int64_t ret, std::uint32_t pid = 1) {
    TraceEvent ev;
    ev.pid = pid;
    ev.tid = pid;
    ev.syscall = syscall;
    ev.args = {{"fd", ArgValue{fd}}};
    ev.ret = ret;
    return ev;
}

TraceEvent ev_path(const std::string& syscall, const std::string& path,
                   std::int64_t ret, std::uint32_t pid = 1) {
    TraceEvent ev;
    ev.pid = pid;
    ev.tid = pid;
    ev.syscall = syscall;
    ev.args = {{"pathname", ArgValue{path}}};
    ev.ret = ret;
    return ev;
}

TEST(TraceFilter, AdmitsPathsUnderMountPoint) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    EXPECT_TRUE(f.admit(ev_open("/mnt/test/file", 3)));
    EXPECT_TRUE(f.admit(ev_open("/mnt/test", 4)));
    EXPECT_FALSE(f.admit(ev_open("/home/user/file", 5)));
    EXPECT_FALSE(f.admit(ev_open("/mnt/testsuffix/file", 6)));
    EXPECT_FALSE(f.admit(ev_open("/mnt", 7)));
}

TEST(TraceFilter, ExcludePatternsVetoIncludes) {
    FilterConfig cfg = FilterConfig::mount_point("/mnt/test");
    cfg.exclude.push_back("^/mnt/test/private(/.*)?$");
    TraceFilter f(cfg);
    EXPECT_TRUE(f.admit(ev_open("/mnt/test/public", 3)));
    EXPECT_FALSE(f.admit(ev_open("/mnt/test/private/secret", 4)));
}

TEST(TraceFilter, TracksFdsFromAdmittedOpens) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    ASSERT_TRUE(f.admit(ev_open("/mnt/test/file", 3)));
    EXPECT_EQ(f.watched_fd_count(), 1u);
    // fd-based syscalls on the watched fd are in scope.
    EXPECT_TRUE(f.admit(ev_fd("write", 3, 100)));
    EXPECT_TRUE(f.admit(ev_fd("lseek", 3, 0)));
    // A different fd belongs to some other file.
    EXPECT_FALSE(f.admit(ev_fd("write", 5, 100)));
}

TEST(TraceFilter, CloseUnwatchesTheFd) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    ASSERT_TRUE(f.admit(ev_open("/mnt/test/file", 3)));
    EXPECT_TRUE(f.admit(ev_fd("close", 3, 0)));
    EXPECT_EQ(f.watched_fd_count(), 0u);
    EXPECT_FALSE(f.admit(ev_fd("write", 3, 100)));  // recycled fd, unknown
}

TEST(TraceFilter, FailedOpenDoesNotWatchAnFd) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    EXPECT_TRUE(f.admit(ev_open("/mnt/test/missing", -2)));
    EXPECT_EQ(f.watched_fd_count(), 0u);
}

TEST(TraceFilter, OutOfScopeOpenFdStaysUnwatched) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    EXPECT_FALSE(f.admit(ev_open("/var/log/syslog", 3)));
    EXPECT_FALSE(f.admit(ev_fd("read", 3, 10)));
}

TEST(TraceFilter, FdTrackingIsPerPid) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    ASSERT_TRUE(f.admit(ev_open("/mnt/test/file", 3, /*pid=*/1)));
    EXPECT_FALSE(f.admit(ev_fd("write", 3, 10, /*pid=*/2)));
    EXPECT_TRUE(f.admit(ev_fd("write", 3, 10, /*pid=*/1)));
}

TEST(TraceFilter, ChdirEstablishesRelativePathScope) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    // Before any chdir, relative paths are out of scope.
    EXPECT_FALSE(f.admit(ev_path("chdir", "subdir", 0)));
    ASSERT_TRUE(f.admit(ev_path("chdir", "/mnt/test/scratch", 0)));
    // Now relative lookups resolve inside the mount point.
    EXPECT_TRUE(f.admit(ev_path("chdir", "subdir", 0)));
    EXPECT_TRUE(f.admit(ev_open("relative_file", 4)));
    // Leaving the mount point turns relative scope off again.
    ASSERT_FALSE(f.admit(ev_path("chdir", "/home", 0)));
    EXPECT_FALSE(f.admit(ev_open("relative_file", 5)));
}

TEST(TraceFilter, FailedChdirDoesNotChangeScope) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    ASSERT_TRUE(f.admit(ev_path("chdir", "/mnt/test", 0)));
    EXPECT_FALSE(f.admit(ev_path("chdir", "/elsewhere", -2)));
    EXPECT_TRUE(f.admit(ev_open("still_relative", 4)));
}

TEST(TraceFilter, OpenatThroughWatchedDfd) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    // Open the mount-point directory itself, then openat through it.
    TraceEvent dir_open = ev_open("/mnt/test", 7);
    ASSERT_TRUE(f.admit(dir_open));
    TraceEvent at;
    at.pid = 1;
    at.tid = 1;
    at.syscall = "openat";
    at.args = {{"dfd", ArgValue{std::int64_t{7}}},
               {"pathname", ArgValue{std::string("child")}},
               {"flags", ArgValue{std::uint64_t{0}}},
               {"mode", ArgValue{std::uint64_t{0}}}};
    at.ret = 8;
    EXPECT_TRUE(f.admit(at));
    EXPECT_TRUE(f.admit(ev_fd("write", 8, 4)));
}

TEST(TraceFilter, FilterResetsBetweenRuns) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test"));
    std::vector<TraceEvent> run1{ev_open("/mnt/test/a", 3)};
    EXPECT_EQ(f.filter(run1).size(), 1u);
    // A second filter() call must not remember run1's fd 3.
    std::vector<TraceEvent> run2{ev_fd("write", 3, 10)};
    EXPECT_EQ(f.filter(run2).size(), 0u);
}

TEST(TraceFilter, MountPointEscapingHandlesRegexMetacharacters) {
    TraceFilter f(FilterConfig::mount_point("/mnt/test+dir(1)"));
    EXPECT_TRUE(f.admit(ev_open("/mnt/test+dir(1)/file", 3)));
    EXPECT_FALSE(f.admit(ev_open("/mnt/testXdir(1)/file", 4)));
}

TEST(TraceFilter, PrefixFastPathMatchesRegexSemantics) {
    TraceFilter regex_f(FilterConfig::mount_point("/mnt/test"));
    TraceFilter prefix_f(FilterConfig::mount_point_prefix("/mnt/test"));
    const std::vector<std::string> probes = {
        "/mnt/test",        "/mnt/test/",         "/mnt/test/a/b",
        "/mnt/testsuffix",  "/mnt/tes",           "/mnt",
        "/home/x",          "/mnt/test2/file",
    };
    for (const auto& path : probes) {
        EXPECT_EQ(regex_f.admit(ev_open(path, 3)),
                  prefix_f.admit(ev_open(path, 3)))
            << path;
    }
}

TEST(TraceFilter, PrefixAndRegexCompose) {
    FilterConfig cfg = FilterConfig::mount_point_prefix("/mnt/test");
    cfg.include.push_back("^/media/other(/.*)?$");
    cfg.exclude.push_back("^/mnt/test/private(/.*)?$");
    TraceFilter f(cfg);
    EXPECT_TRUE(f.admit(ev_open("/mnt/test/f", 3)));
    EXPECT_TRUE(f.admit(ev_open("/media/other/f", 4)));
    EXPECT_FALSE(f.admit(ev_open("/mnt/test/private/f", 5)));
    EXPECT_FALSE(f.admit(ev_open("/elsewhere", 6)));
}

}  // namespace
}  // namespace iocov::trace
