// Persisted-prefix oracle: sound on a correct file system (zero
// violations across every enumerated crash point of every baseline
// workload), sensitive to real divergence (a mutated recovered state
// is flagged), and able to catch the seeded skip-a-barrier bug that
// fsck alone cannot see.
#include "testers/crash/oracle.hpp"

#include <gtest/gtest.h>

#include <string>

#include "syscall/kernel.hpp"
#include "syscall/process.hpp"
#include "testers/crash/workloads.hpp"
#include "testers/generator.hpp"
#include "vfs/fsck.hpp"

namespace iocov::testers::crash {
namespace {

struct LiveResult {
    vfs::FileSystem fs{recommended_fs_config()};
    EffectLog log;
};

void run_workload_live(LiveResult& live, const CrashWorkload& wl) {
    crash_base_setup(live.fs);
    live.fs.set_effect_observer(&live.log);
    syscall::Kernel kernel(live.fs, nullptr);
    {
        syscall::Process proc =
            kernel.make_process(1, vfs::Credentials::root());
        wl.run(proc, crash_fixtures());
    }
    live.fs.set_effect_observer(nullptr);
}

const CrashWorkload& workload(const std::string& name) {
    for (const auto& wl : crashmonkey_baseline())
        if (wl.name == name) return wl;
    ADD_FAILURE() << "no workload " << name;
    return crashmonkey_baseline().front();
}

TEST(CrashOracle, OneSnapshotPerBarrierPlusBase) {
    LiveResult live;
    run_workload_live(live, workload("create_fsync"));
    const PersistenceOracle oracle(live.log, recommended_fs_config(),
                                   crash_base_setup);
    EXPECT_EQ(oracle.snapshot_count(),
              live.log.barrier_positions().size() + 1);
}

TEST(CrashOracle, CorrectReplayHasZeroViolationsAcrossAllPoints) {
    // The soundness half of the oracle contract: a file system that
    // honors its barriers produces no violation at any crash point.
    for (const auto& wl : crashmonkey_baseline()) {
        LiveResult live;
        run_workload_live(live, wl);
        const vfs::FsConfig cfg = recommended_fs_config();
        CrashReplayer replayer(live.log, cfg, crash_base_setup);
        const PersistenceOracle oracle(live.log, cfg, crash_base_setup);
        CrashPlanConfig plan_cfg;
        for (const auto& point : replayer.plan(plan_cfg)) {
            const RecoveredState rec = replayer.replay(point);
            const auto bugs = oracle.check(point, rec);
            EXPECT_TRUE(bugs.empty())
                << wl.name << " @" << point.id() << ": "
                << (bugs.empty() ? std::string{}
                                 : bugs.front().to_string());
        }
    }
}

TEST(CrashOracle, DetectsDataLossInACorruptedRecoveredState) {
    LiveResult live;
    run_workload_live(live, workload("create_fsync"));
    const vfs::FsConfig cfg = recommended_fs_config();
    CrashReplayer replayer(live.log, cfg, crash_base_setup);
    const PersistenceOracle oracle(live.log, cfg, crash_base_setup);

    // Crash exactly at the fsync: the file's first write is guaranteed.
    CrashPoint at_barrier;
    at_barrier.prefix = live.log.barrier_positions().front() + 1;
    RecoveredState rec = replayer.replay(at_barrier);
    ASSERT_TRUE(oracle.check(at_barrier, rec).empty());

    // "Recover" the state with the synced file truncated to nothing —
    // exactly what a buggy journal replay would leave behind.
    const vfs::Effect& create = live.log.effects().front();
    ASSERT_EQ(create.op, vfs::EffectOp::Create);
    ASSERT_TRUE(rec.fs->truncate(rec.ino_map.at(create.ino), 0).ok());
    const auto bugs = oracle.check(at_barrier, rec);
    ASSERT_FALSE(bugs.empty());
    EXPECT_EQ(bugs.front().kind, "data-loss");
}

TEST(CrashOracle, SkipBarrierBugIsCaughtWhileFsckStaysClean) {
    // The thesis demo: a file system that silently forgets an
    // acknowledged barrier recovers to a self-consistent state — fsck
    // finds nothing — but the persisted-prefix oracle flags the loss.
    LiveResult live;
    run_workload_live(live, workload("create_fsync"));
    const vfs::FsConfig cfg = recommended_fs_config();
    CrashReplayer replayer(live.log, cfg, crash_base_setup);
    replayer.inject_skip_barrier(0);
    const PersistenceOracle oracle(live.log, cfg, crash_base_setup);

    CrashPoint full;
    full.prefix = live.log.effects().size();
    const RecoveredState rec = replayer.replay(full);
    EXPECT_GT(rec.dropped, 0u);  // the skipped epoch's effects

    const auto fsck_report = vfs::fsck(*rec.fs, {});
    EXPECT_TRUE(fsck_report.clean()) << fsck_report.to_string();

    const auto bugs = oracle.check(full, rec);
    ASSERT_FALSE(bugs.empty());
    for (const auto& bug : bugs)
        EXPECT_NE(bug.kind.substr(0, 5), "fsck:") << bug.to_string();
}

TEST(CrashOracle, AppliedTailEffectsDoNotFalsePositive) {
    // A surviving tail write legitimately changes content the barrier
    // guaranteed; the oracle must invalidate that fact, not flag it.
    LiveResult live;
    run_workload_live(live, workload("append_fsync"));
    const vfs::FsConfig cfg = recommended_fs_config();
    CrashReplayer replayer(live.log, cfg, crash_base_setup);
    const PersistenceOracle oracle(live.log, cfg, crash_base_setup);
    // In-order tails of every length after the barrier.
    const std::size_t barrier = live.log.barrier_positions().front();
    const std::size_t n = live.log.effects().size();
    for (std::size_t t = 1; t <= n - barrier - 1; ++t) {
        CrashPoint p;
        p.prefix = barrier + 1;
        p.tail = CrashPoint::Tail::InOrder;
        p.variant = static_cast<std::uint32_t>(t);
        const RecoveredState rec = replayer.replay(p);
        const auto bugs = oracle.check(p, rec);
        EXPECT_TRUE(bugs.empty())
            << p.id() << ": "
            << (bugs.empty() ? std::string{} : bugs.front().to_string());
    }
}

TEST(CrashOracle, BugReportCarriesPointAndPath) {
    LiveResult live;
    run_workload_live(live, workload("create_fsync"));
    const vfs::FsConfig cfg = recommended_fs_config();
    CrashReplayer replayer(live.log, cfg, crash_base_setup);
    replayer.inject_skip_barrier(0);
    const PersistenceOracle oracle(live.log, cfg, crash_base_setup);
    CrashPoint full;
    full.prefix = live.log.effects().size();
    const auto bugs = oracle.check(full, replayer.replay(full));
    ASSERT_FALSE(bugs.empty());
    const CrashBug& bug = bugs.front();
    EXPECT_EQ(bug.crash_point, full.id());
    EXPECT_FALSE(bug.path.empty());
    const auto s = bug.to_string();
    EXPECT_NE(s.find(bug.kind), std::string::npos);
    EXPECT_NE(s.find(bug.crash_point), std::string::npos);
}

}  // namespace
}  // namespace iocov::testers::crash
