// The guide loop end to end: gap planning, synthesis, determinism, and
// the before/after coverage movement ISSUE acceptance demands.
#include "testers/guided/loop.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "testers/guided/recipes.hpp"

namespace iocov::testers::guided {
namespace {

GuideConfig small_config() {
    GuideConfig cfg;
    cfg.suite = "crashmonkey";
    cfg.scale = 0.002;
    cfg.seed = 42;
    return cfg;
}

// The headline acceptance criterion: starting from a small crashmonkey
// baseline, the loop reaches >= 20 previously-untested partitions and
// reduces the aggregate TCD.
TEST(GuideLoop, ClosesGapsAndReducesTcdOnCrashmonkeyBaseline) {
    const auto result = run_guide(small_config());
    EXPECT_GE(result.partitions_closed(), 20u);
    EXPECT_GT(result.tcd_improvement(), 0.0);
    EXPECT_LT(result.gaps_after.aggregate_tcd,
              result.gaps_before.aggregate_tcd);
    EXPECT_FALSE(result.rounds.empty());
    EXPECT_GT(result.total_planned_calls, 0u);
}

TEST(GuideLoop, SameConfigIsBitIdentical) {
    const auto a = run_guide(small_config());
    const auto b = run_guide(small_config());
    EXPECT_EQ(a.baseline, b.baseline);
    EXPECT_EQ(a.final_report, b.final_report);
    EXPECT_EQ(a.rounds.size(), b.rounds.size());
    EXPECT_EQ(a.total_planned_calls, b.total_planned_calls);
    EXPECT_EQ(a.table(), b.table());
    EXPECT_EQ(a.summary(), b.summary());
}

TEST(GuideLoop, BeforeAfterTableTracksEverySpace) {
    const auto result = run_guide(small_config());
    ASSERT_FALSE(result.deltas.empty());
    // Coverage only ever merges, so no space can lose tested partitions,
    // and at least one previously-dark space must light up.
    bool some_space_lit_up = false;
    for (const auto& d : result.deltas) {
        EXPECT_GE(d.tested_after, d.tested_before) << d.space;
        EXPECT_LE(d.tested_after, d.declared) << d.space;
        if (d.closed() > 0) some_space_lit_up = true;
    }
    EXPECT_TRUE(some_space_lit_up);
    const auto table = result.table();
    EXPECT_NE(table.find("TOTAL"), std::string::npos);
    const auto summary = result.summary();
    EXPECT_NE(summary.find("partitions closed"), std::string::npos);
}

TEST(GuideLoop, RoundAccountingIsConsistent) {
    const auto result = run_guide(small_config());
    std::uint64_t planned = 0;
    for (const auto& r : result.rounds) {
        EXPECT_LE(r.gaps_after, r.gaps_before);
        planned += r.planned_calls;
    }
    EXPECT_EQ(planned, result.total_planned_calls);
    EXPECT_LE(result.rounds.size(), small_config().max_rounds);
}

TEST(GuideLoop, RespectsTheCallBudget) {
    auto cfg = small_config();
    cfg.call_budget = 40;
    const auto result = run_guide(cfg);
    EXPECT_LE(result.total_planned_calls, cfg.call_budget);
}

TEST(GuideLoop, PlateauStopsTheLoopEarly) {
    auto cfg = small_config();
    cfg.max_rounds = 10;
    cfg.min_tcd_gain = 1e9;  // no round can gain this much
    const auto result = run_guide(cfg);
    EXPECT_EQ(result.rounds.size(), 1u);
}

TEST(GuideLoop, EmptyBaselineHasNothingToGuide) {
    const auto result =
        run_guide_on_baseline(core::CoverageReport{}, small_config());
    EXPECT_EQ(result.partitions_closed(), 0u);
    EXPECT_EQ(result.total_planned_calls, 0u);
    EXPECT_TRUE(result.rounds.empty());
}

TEST(GuideLoop, UnaddressedGapsCarryReasons) {
    const auto result = run_guide(small_config());
    for (const auto& u : result.unaddressed)
        EXPECT_FALSE(u.reason.empty()) << u.gap.id();
}

// Planner unit properties, independent of any simulated run.
TEST(PlanGaps, EveryGapIsAddressedOrExplained) {
    const auto result = run_guide(small_config());
    const auto plan = plan_gaps(result.gaps_before, 2, 0);
    EXPECT_EQ(plan.gaps_addressed + plan.unaddressed.size(),
              result.gaps_before.total_gaps());
    for (const auto& u : plan.unaddressed)
        EXPECT_FALSE(u.reason.empty()) << u.gap.id();
}

TEST(PlanGaps, BudgetZeroMeansUnboundedAndTinyBudgetMeansTiny) {
    const auto result = run_guide(small_config());
    const auto unbounded = plan_gaps(result.gaps_before, 2, 0);
    const auto capped = plan_gaps(result.gaps_before, 2, 6);
    EXPECT_GE(unbounded.planned_calls, capped.planned_calls);
    EXPECT_LE(capped.planned_calls, 6u);
    EXPECT_GT(unbounded.gaps_addressed, capped.gaps_addressed);
}

TEST(PlanGaps, IsAPureFunctionOfTheGapReport) {
    const auto result = run_guide(small_config());
    const auto a = plan_gaps(result.gaps_before, 2, 100);
    const auto b = plan_gaps(result.gaps_before, 2, 100);
    EXPECT_EQ(a.planned_calls, b.planned_calls);
    EXPECT_EQ(a.gaps_addressed, b.gaps_addressed);
    EXPECT_EQ(a.direct.size(), b.direct.size());
    EXPECT_EQ(a.faults.size(), b.faults.size());
    EXPECT_EQ(a.unaddressed.size(), b.unaddressed.size());
}

}  // namespace
}  // namespace iocov::testers::guided
