#include "report/table.hpp"

#include <gtest/gtest.h>

namespace iocov::report {
namespace {

TEST(WithThousands, GroupsDigits) {
    EXPECT_EQ(with_thousands(0), "0");
    EXPECT_EQ(with_thousands(999), "999");
    EXPECT_EQ(with_thousands(1000), "1,000");
    EXPECT_EQ(with_thousands(4099770), "4,099,770");
}

TEST(Fixed, Decimals) {
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(65.4, 1), "65.4");
}

TEST(RenderTable, AlignsColumnsAndRightAlignsNumbers) {
    const auto out = render_table({"name", "count"},
                                  {{"alpha", "1"}, {"b", "1,000"}});
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1,000"), std::string::npos);
    // Numeric cells right-align: the "1" row pads on the left.
    EXPECT_NE(out.find("     1\n"), std::string::npos);
}

TEST(RenderHistogram, ShowsBarsOnlyForNonzero) {
    stats::PartitionHistogram h =
        stats::PartitionHistogram::with_partitions({"hot", "cold"});
    h.add("hot", 1000);
    const auto out = render_histogram(h);
    EXPECT_NE(out.find('#'), std::string::npos);
    // The "cold" row has an empty bar.
    const auto cold_pos = out.find("cold");
    ASSERT_NE(cold_pos, std::string::npos);
    const auto cold_line = out.substr(cold_pos, out.find('\n', cold_pos) -
                                                    cold_pos);
    EXPECT_EQ(cold_line.find('#'), std::string::npos);
}

TEST(RenderComparison, UnionsPartitionsFromBothSides) {
    stats::PartitionHistogram a, b;
    a.add("only_a", 5);
    b.add("only_b", 7);
    const auto out = render_comparison("A", a, "B", b);
    EXPECT_NE(out.find("only_a"), std::string::npos);
    EXPECT_NE(out.find("only_b"), std::string::npos);
}

}  // namespace
}  // namespace iocov::report
