// Parallel sharded analysis: merge algebra, shard/serial equivalence,
// thread-pool basics, and the end-to-end parallel text pipeline.
//
// The hard guarantee under test: for a fresh IOCov, consume_text and
// consume_text_parallel produce bit-identical CoverageReports.  That
// holds because (a) the trace filter's state is strictly per-pid, so
// pid-sharding preserves every filter decision, and (b) histogram row
// order is canonical (declared block + sorted dynamic tail), so the
// shard-merge order cannot leak into the report.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "core/coverage.hpp"
#include "core/iocov.hpp"
#include "exec/thread_pool.hpp"
#include "syscall/kernel.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::core {
namespace {

// Runs the xfstests simulator and returns the raw (unfiltered) trace.
std::vector<trace::TraceEvent> generator_trace(double scale) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fs, &buffer);
    testers::run_xfstests(kernel, fx, scale, 42);
    return buffer.take_events();
}

CoverageReport analyze(const std::vector<trace::TraceEvent>& events) {
    Analyzer a;
    for (const auto& ev : events) a.consume(ev);
    return a.take_report();
}

// Thirds of the generator trace give three reports with overlapping
// but distinct partition sets — the interesting case for merge.
std::vector<CoverageReport> three_slices() {
    const auto events = generator_trace(0.02);
    const auto third = events.size() / 3;
    std::vector<CoverageReport> out;
    for (int i = 0; i < 3; ++i) {
        const auto begin = events.begin() + static_cast<long>(i * third);
        const auto end =
            i == 2 ? events.end()
                   : events.begin() + static_cast<long>((i + 1) * third);
        out.push_back(analyze({begin, end}));
    }
    return out;
}

// ---- merge algebra ---------------------------------------------------------

TEST(Merge, Commutative) {
    const auto s = three_slices();
    auto ab = s[0];
    ab.merge(s[1]);
    auto ba = s[1];
    ba.merge(s[0]);
    EXPECT_EQ(ab, ba);
}

TEST(Merge, Associative) {
    const auto s = three_slices();
    auto left = s[0];  // (a + b) + c
    left.merge(s[1]);
    left.merge(s[2]);
    auto bc = s[1];  // a + (b + c)
    bc.merge(s[2]);
    auto right = s[0];
    right.merge(bc);
    EXPECT_EQ(left, right);
}

TEST(Merge, EmptyReportIsIdentity) {
    const auto s = three_slices();
    auto merged = s[0];
    merged.merge(Analyzer().report());
    EXPECT_EQ(merged, s[0]);
    auto onto_empty = Analyzer().take_report();
    onto_empty.merge(s[0]);
    EXPECT_EQ(onto_empty, s[0]);
}

// ---- sharded analysis == serial analysis -----------------------------------

TEST(Sharding, NWayRoundRobinEqualsSerial) {
    const auto events = generator_trace(0.02);
    ASSERT_GT(events.size(), 1000u);
    const auto serial = analyze(events);

    constexpr std::size_t kShards = 4;
    std::vector<Analyzer> shards(kShards);
    for (std::size_t i = 0; i < events.size(); ++i)
        shards[i % kShards].consume(events[i]);

    // Merge in a deliberately scrambled order: row order is canonical,
    // so the result must not depend on it.
    auto merged = Analyzer().take_report();
    for (const std::size_t s : {2u, 0u, 3u, 1u})
        merged.merge(shards[s].report());
    EXPECT_EQ(merged, serial);
    EXPECT_EQ(merged.events_seen, serial.events_seen);
    EXPECT_EQ(merged.events_tracked, serial.events_tracked);
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
    exec::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    exec::parallel_for(pool, hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
    exec::ThreadPool pool(2);
    EXPECT_THROW(exec::parallel_for(pool, 64,
                                    [](std::size_t i) {
                                        if (i == 17)
                                            throw std::runtime_error("boom");
                                    }),
                 std::runtime_error);
    // Pool must still be usable after a failed batch.
    std::atomic<int> n{0};
    exec::parallel_for(pool, 8, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 8);
}

// ---- work stealing ---------------------------------------------------------

TEST(WorkStealing, VisitsEveryItemExactlyOnce) {
    exec::ThreadPool pool(4);
    // Heavily skewed weights: one giant item plus a long tail, so the
    // initial LPT deal is unbalanced and stealing actually happens.
    std::vector<std::uint64_t> weights;
    for (std::size_t i = 0; i < 200; ++i)
        weights.push_back(i == 0 ? 1'000'000 : i % 7);
    std::vector<std::atomic<int>> hits(weights.size());
    exec::parallel_for_stealing(pool, weights, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(WorkStealing, HandlesFewerItemsThanLanesAndEmptyInput) {
    exec::ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    exec::parallel_for_stealing(pool, {5, 0, 9}, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    // Empty input is a no-op, not a crash.
    exec::parallel_for_stealing(pool, {}, [](std::size_t) { FAIL(); });
}

TEST(WorkStealing, ExceptionPropagatesAfterEveryItemWasAttempted) {
    exec::ThreadPool pool(4);
    std::vector<std::uint64_t> weights(64, 1);
    std::vector<std::atomic<int>> hits(weights.size());
    EXPECT_THROW(
        exec::parallel_for_stealing(pool, weights,
                                    [&](std::size_t i) {
                                        hits[i].fetch_add(1);
                                        if (i == 17)
                                            throw std::runtime_error("boom");
                                    }),
        std::runtime_error);
    // A failed item never silently skips the rest of the batch.
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "item " << i;
    // Pool must still be usable afterwards.
    std::atomic<int> n{0};
    exec::parallel_for_stealing(pool, {1, 2, 3},
                                [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 3);
}

// ---- end-to-end: parallel consume_text == serial consume_text --------------

// Interleaves several simulated processes round-robin into one text
// trace.  The built-in tester simulators only use two pids, so a
// hand-rolled workload is needed to exercise pid-sharding for real.
// Includes out-of-scope opens and failing calls so the stateful filter
// has actual decisions to make.
std::string multi_pid_text_trace(std::size_t min_events) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    std::ostringstream os;
    trace::TextSink sink(os);
    syscall::Kernel kernel(fs, &sink);

    std::vector<syscall::Process> procs;
    for (const std::uint32_t pid : {11u, 12u, 13u, 14u, 15u, 16u, 17u})
        procs.push_back(
            kernel.make_process(pid, vfs::Credentials::user(1000, 1000)));

    std::size_t emitted = 0;
    for (std::size_t round = 0; emitted < min_events; ++round) {
        for (std::size_t p = 0; p < procs.size(); ++p) {
            auto& proc = procs[p];
            const auto salt = round * 31 + p * 7;
            const std::string path = fx.scratch + "/f" +
                                     std::to_string(p) + "_" +
                                     std::to_string(round % 13);
            const std::uint32_t flags =
                salt % 3 == 0   ? abi::O_RDWR | abi::O_CREAT
                : salt % 3 == 1 ? abi::O_WRONLY | abi::O_CREAT | abi::O_APPEND
                                : abi::O_RDONLY | abi::O_CREAT;
            const auto fd =
                static_cast<int>(proc.sys_open(path.c_str(), flags, 0644));
            proc.sys_write(fd, syscall::WriteSrc::pattern(
                                   std::uint64_t{1} << (salt % 14),
                                   std::byte{0x5a}));
            proc.sys_lseek(fd, 0, salt % 4 == 0 ? abi::SEEK_END_
                                                : abi::SEEK_SET_);
            proc.sys_read(fd, syscall::ReadDst::discard(1u << (salt % 10)));
            proc.sys_close(fd);
            emitted += 5;
            if (salt % 5 == 0) {
                // Out of scope: the filter must drop it on every path.
                proc.sys_open("/outside/the/mount", abi::O_RDONLY);
                ++emitted;
            }
            if (salt % 11 == 0) {
                proc.sys_mkdir((path + ".d").c_str(), 0755);
                proc.sys_chmod(path.c_str(), salt % 2 ? 0600 : 0444);
                emitted += 2;
            }
        }
    }
    return os.str();
}

TEST(ParallelPipeline, ParallelConsumeTextMatchesSerialOn100kEvents) {
    const auto text = multi_pid_text_trace(100000);
    ASSERT_GE(static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              100000u);

    const auto config = trace::FilterConfig::mount_point("/mnt/test");
    IOCov serial(config);
    std::istringstream serial_in(text);
    const auto serial_dropped = serial.consume_text(serial_in);

    IOCov parallel(config);
    std::istringstream parallel_in(text);
    const auto parallel_dropped =
        parallel.consume_text_parallel(parallel_in, 4);

    EXPECT_EQ(serial_dropped, parallel_dropped);
    EXPECT_EQ(parallel.events_filtered_out(), serial.events_filtered_out());
    EXPECT_GT(serial.events_filtered_out(), 0u);  // filter actually ran
    // The headline guarantee: bit-identical reports.
    EXPECT_EQ(parallel.report(), serial.report());
}

TEST(ParallelPipeline, ThreadCountDoesNotChangeTheReport) {
    const auto text = multi_pid_text_trace(5000);
    const auto config = trace::FilterConfig::mount_point("/mnt/test");

    IOCov serial(config);
    std::istringstream in1(text);
    serial.consume_text(in1);

    for (const unsigned n : {2u, 3u, 8u}) {
        IOCov parallel(config);
        std::istringstream in(text);
        parallel.consume_text_parallel(in, n);
        EXPECT_EQ(parallel.report(), serial.report()) << n << " threads";
    }
}

TEST(ParallelPipeline, OneThreadFallsBackToSerialPath) {
    const auto text = multi_pid_text_trace(2000);
    const auto config = trace::FilterConfig::mount_point("/mnt/test");
    IOCov serial(config), one(config);
    std::istringstream in1(text), in2(text);
    EXPECT_EQ(serial.consume_text(in1), one.consume_text_parallel(in2, 1));
    EXPECT_EQ(one.report(), serial.report());
}

TEST(ParallelPipeline, MalformedLinesCountedAcrossChunks) {
    std::string text = multi_pid_text_trace(2000);
    // Sprinkle malformed lines at both ends and the middle so they land
    // in different parse chunks.
    text.insert(0, "this is not a trace line\n");
    text.insert(text.size() / 2, "\nneither is this\n");
    text += "garbage at the end\n";
    // (The middle insertion may split an event line in two; both sides
    // see the same bytes, so the drop counts still have to agree.)
    IOCov serial(trace::FilterConfig::mount_point("/mnt/test"));
    IOCov parallel(trace::FilterConfig::mount_point("/mnt/test"));
    std::istringstream in1(text), in2(text);
    const auto d1 = serial.consume_text(in1);
    const auto d2 = parallel.consume_text_parallel(in2, 4);
    EXPECT_EQ(d1, d2);
    EXPECT_GE(d1, 3u);
    EXPECT_EQ(parallel.report(), serial.report());
}

}  // namespace
}  // namespace iocov::core
