// IOCT binary format: encode/decode round-trips (property-tested over
// randomized events), torn-file semantics, footer bookkeeping, record
// resync, BinarySink framing, and MappedFile.
#include "trace/binary_format.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include "trace/text_format.hpp"

namespace iocov::trace {
namespace {

TraceEvent sample_event() {
    TraceEvent ev;
    ev.seq = 17;
    ev.pid = 1201;
    ev.tid = 1201;
    ev.syscall = "openat";
    ev.args = {{"dfd", ArgValue{std::int64_t{-100}}},
               {"pathname", ArgValue{std::string("/mnt/test/f0")}},
               {"flags", ArgValue{std::uint64_t{0241}}},
               {"mode", ArgValue{std::uint64_t{0644}}}};
    ev.ret = 3;
    return ev;
}

// All 27 tracked variants plus untracked noise the filter sees.
const char* const kSyscallNames[] = {
    "open",     "openat",   "creat",     "openat2",  "read",
    "pread64",  "readv",    "write",     "pwrite64", "writev",
    "lseek",    "truncate", "ftruncate", "mkdir",    "mkdirat",
    "chmod",    "fchmod",   "fchmodat",  "close",    "chdir",
    "fchdir",   "setxattr", "lsetxattr", "fsetxattr", "getxattr",
    "lgetxattr", "fgetxattr", "fsync",   "unlink",   "rename"};

/// Deterministic random event covering the encoder's whole value
/// space: extreme numerics, empty strings, and raw bytes (embedded
/// NUL/newline) that the text format cannot even represent.
TraceEvent random_event(std::mt19937_64& rng) {
    TraceEvent ev;
    ev.seq = rng();
    ev.pid = static_cast<std::uint32_t>(rng());
    ev.tid = static_cast<std::uint32_t>(rng());
    ev.syscall = kSyscallNames[rng() % std::size(kSyscallNames)];
    ev.ret = static_cast<std::int64_t>(rng());
    const std::size_t argc = rng() % 5;
    for (std::size_t i = 0; i < argc; ++i) {
        Arg arg;
        arg.name = "a" + std::to_string(rng() % 6);
        switch (rng() % 7) {
            case 0: arg.value = std::int64_t{0}; break;
            case 1:
                arg.value = std::numeric_limits<std::int64_t>::min();
                break;
            case 2:
                arg.value = std::numeric_limits<std::uint64_t>::max();
                break;
            case 3: arg.value = std::uint64_t{rng()}; break;
            case 4: arg.value = std::string(); break;
            case 5:
                arg.value = std::string("/mnt/test/p") +
                            std::to_string(rng() % 1000);
                break;
            default: {
                std::string raw;
                const std::size_t len = rng() % 40;
                for (std::size_t b = 0; b < len; ++b)
                    raw.push_back(static_cast<char>(rng() & 0xff));
                arg.value = std::move(raw);
            }
        }
        ev.args.push_back(std::move(arg));
    }
    return ev;
}

TEST(BinaryFormat, RoundTripsSampleEvent) {
    const std::vector<TraceEvent> events{sample_event()};
    std::size_t dropped = 1;
    const auto decoded = decode_trace(encode_trace(events), &dropped);
    EXPECT_EQ(dropped, 0u);
    EXPECT_EQ(decoded, events);
}

TEST(BinaryFormat, RoundTripsEmptyTrace) {
    const auto bytes = encode_trace({});
    EXPECT_TRUE(is_ioct(bytes));
    std::size_t dropped = 1;
    const auto decoded = decode_trace(bytes, &dropped);
    EXPECT_EQ(dropped, 0u);
    EXPECT_TRUE(decoded.empty());
    const auto scan = scan_ioct(bytes);
    ASSERT_TRUE(scan.footer.has_value());
    EXPECT_EQ(scan.footer->total_events, 0u);
}

TEST(BinaryFormat, PropertyRandomizedEventsRoundTrip) {
    std::mt19937_64 rng(20230731);
    std::vector<TraceEvent> events;
    for (int i = 0; i < 2000; ++i) events.push_back(random_event(rng));
    // Every tracked syscall appears at least once across 2000 draws.
    std::size_t dropped = 1;
    const auto decoded = decode_trace(encode_trace(events), &dropped);
    EXPECT_EQ(dropped, 0u);
    ASSERT_EQ(decoded.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(decoded[i], events[i]) << "event " << i;
}

TEST(BinaryFormat, RoundTripsRawBytesTextCannotRepresent) {
    TraceEvent ev = sample_event();
    ev.args.push_back(
        {"name", ArgValue{std::string("x\0y\nz", 5)}});  // NUL + newline
    const auto decoded = decode_trace(encode_trace({ev}));
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0], ev);
}

TEST(BinaryFormat, FooterCountsEventsPerPid) {
    std::mt19937_64 rng(7);
    std::vector<TraceEvent> events;
    std::size_t pid3 = 0, pid9 = 0;
    for (int i = 0; i < 500; ++i) {
        auto ev = random_event(rng);
        ev.pid = rng() % 2 ? 3 : 9;
        (ev.pid == 3 ? pid3 : pid9) += 1;
        events.push_back(std::move(ev));
    }
    const auto scan = scan_ioct(encode_trace(events));
    ASSERT_TRUE(scan.header_ok);
    ASSERT_TRUE(scan.footer.has_value());
    EXPECT_EQ(scan.footer->total_events, events.size());
    ASSERT_EQ(scan.footer->pid_events.size(), 2u);  // sorted by pid
    EXPECT_EQ(scan.footer->pid_events[0],
              (std::pair<std::uint32_t, std::uint64_t>{3, pid3}));
    EXPECT_EQ(scan.footer->pid_events[1],
              (std::pair<std::uint32_t, std::uint64_t>{9, pid9}));
}

TEST(BinaryFormat, TruncatedFileYieldsIntactPrefixAndCountsTail) {
    std::mt19937_64 rng(99);
    std::vector<TraceEvent> events;
    for (int i = 0; i < 200; ++i) events.push_back(random_event(rng));
    const auto bytes = encode_trace(events);

    // Cut mid-payload of chosen records: every event before the torn
    // one must round-trip, and the tear itself must count as exactly
    // one dropped record — parse_stream's torn-line semantics.
    const auto scan = scan_ioct(bytes);
    ASSERT_EQ(scan.events.size(), events.size());
    for (const std::size_t idx : {std::size_t{0}, std::size_t{50},
                                  std::size_t{150}, std::size_t{199}}) {
        const auto& ref = scan.events[idx];
        const std::size_t cut = ref.offset + ref.length / 2;
        std::size_t dropped = 0;
        const auto decoded =
            decode_trace(std::string_view(bytes).substr(0, cut), &dropped);
        ASSERT_EQ(decoded.size(), idx) << "cut at " << cut;
        for (std::size_t i = 0; i < decoded.size(); ++i)
            EXPECT_EQ(decoded[i], events[i]);
        EXPECT_EQ(dropped, 1u) << "cut at " << cut;
    }
}

TEST(BinaryFormat, TruncationAtEveryByteNeverCrashesOrInventsEvents) {
    std::mt19937_64 rng(5);
    std::vector<TraceEvent> events;
    for (int i = 0; i < 20; ++i) events.push_back(random_event(rng));
    const auto bytes = encode_trace(events);
    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        std::size_t dropped = 0;
        const auto decoded =
            decode_trace(std::string_view(bytes).substr(0, cut), &dropped);
        ASSERT_LE(decoded.size(), events.size());
        for (std::size_t i = 0; i < decoded.size(); ++i)
            ASSERT_EQ(decoded[i], events[i]) << "cut at " << cut;
    }
}

TEST(BinaryFormat, UnknownTagIsSkippedAndDecodingResyncs) {
    const std::vector<TraceEvent> events{sample_event(), sample_event()};
    auto bytes = encode_trace(events);
    // Splice an unknown-tag record right after the header: the length
    // prefix lets the scanner resync past it.
    std::string alien;
    alien.push_back(4);  // u32 LE length = 4
    alien.push_back(0);
    alien.push_back(0);
    alien.push_back(0);
    alien.push_back(0x7f);  // unknown tag
    alien.append("abc");
    bytes.insert(kIoctHeaderSize, alien);
    std::size_t dropped = 0;
    const auto decoded = decode_trace(bytes, &dropped);
    EXPECT_EQ(dropped, 1u);
    EXPECT_EQ(decoded, events);
}

TEST(BinaryFormat, RejectsNonIoctBuffers) {
    EXPECT_FALSE(is_ioct(""));
    EXPECT_FALSE(is_ioct("[000000017] pid=1 tid=1 open: = 0"));
    EXPECT_FALSE(is_ioct("IOC"));
    auto wrong_version = ioct_header();
    wrong_version[4] = 9;
    EXPECT_FALSE(is_ioct(wrong_version));
    const auto scan = scan_ioct("not a trace at all");
    EXPECT_FALSE(scan.header_ok);
    EXPECT_TRUE(scan.events.empty());
}

TEST(BinaryFormat, BinarySinkMatchesOneShotEncoder) {
    std::mt19937_64 rng(11);
    std::vector<TraceEvent> events;
    // Enough volume to force several interim buffer flushes.
    for (int i = 0; i < 5000; ++i) events.push_back(random_event(rng));

    std::ostringstream os;
    {
        BinarySink sink(os);
        for (const auto& ev : events) sink.emit(ev);
    }  // destructor finishes
    EXPECT_EQ(os.str(), encode_trace(events));
}

TEST(BinaryFormat, ScratchDecodeReusesEventAcrossRecords) {
    std::mt19937_64 rng(3);
    std::vector<TraceEvent> events;
    for (int i = 0; i < 50; ++i) events.push_back(random_event(rng));
    const auto bytes = encode_trace(events);
    const auto scan = scan_ioct(bytes);
    ASSERT_EQ(scan.events.size(), events.size());
    TraceEvent scratch;  // one event reused for every record
    for (std::size_t i = 0; i < scan.events.size(); ++i) {
        const auto& ref = scan.events[i];
        ASSERT_TRUE(decode_event(
            std::string_view(bytes).substr(ref.offset, ref.length),
            scan.strings, scratch));
        EXPECT_EQ(scratch, events[i]);
        EXPECT_EQ(ref.pid, events[i].pid);  // scan pre-decoded the pid
    }
}

TEST(MappedFileTest, MmapAndReadCopyAgree) {
    std::mt19937_64 rng(23);
    std::vector<TraceEvent> events;
    for (int i = 0; i < 100; ++i) events.push_back(random_event(rng));
    const auto bytes = encode_trace(events);

    const auto path = std::filesystem::temp_directory_path() /
                      "iocov_test_mapped_file.ioct";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    auto mapped = MappedFile::open(path.string(), MappedFile::Mode::Auto);
    auto copied = MappedFile::open(path.string(),
                                   MappedFile::Mode::ReadCopy);
    ASSERT_TRUE(mapped.has_value());
    ASSERT_TRUE(copied.has_value());
    EXPECT_TRUE(mapped->mmapped());
    EXPECT_FALSE(copied->mmapped());
    EXPECT_EQ(mapped->data(), std::string_view(bytes));
    EXPECT_EQ(copied->data(), std::string_view(bytes));
    // Decoding straight out of the mapping (string table aliases it).
    EXPECT_EQ(decode_trace(mapped->data()), events);
    std::filesystem::remove(path);
}

TEST(MappedFileTest, MissingFileIsNullopt) {
    EXPECT_FALSE(
        MappedFile::open("/nonexistent/iocov/trace.ioct").has_value());
}

TEST(MappedFileTest, EmptyFileMapsAsEmptyView) {
    const auto path = std::filesystem::temp_directory_path() /
                      "iocov_test_empty.ioct";
    { std::ofstream out(path, std::ios::binary); }
    auto mf = MappedFile::open(path.string());
    ASSERT_TRUE(mf.has_value());
    EXPECT_TRUE(mf->data().empty());
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace iocov::trace
