// Binary (IOCT) ingestion end-to-end: consume_binary and
// consume_binary_parallel must produce reports bit-identical to
// consume_text over the same trace.  One simulated workload is emitted
// through a TeeSink into a TextSink and a BinarySink simultaneously,
// so both representations describe the exact same event stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "core/iocov.hpp"
#include "syscall/kernel.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/binary_format.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::core {
namespace {

struct TwinTraces {
    std::string text;
    std::string binary;
};

// Same multi-pid workload shape as the text-pipeline tests: several
// processes interleaved round-robin, with out-of-scope opens and
// failing calls so the stateful filter has real decisions to make.
TwinTraces twin_traces(std::size_t min_events) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    std::ostringstream text_os;
    std::ostringstream binary_os;
    trace::TextSink text_sink(text_os);
    {
        trace::BinarySink binary_sink(binary_os);
        trace::TeeSink tee(text_sink, binary_sink);
        syscall::Kernel kernel(fs, &tee);

        std::vector<syscall::Process> procs;
        for (const std::uint32_t pid : {11u, 12u, 13u, 14u, 15u, 16u, 17u})
            procs.push_back(
                kernel.make_process(pid, vfs::Credentials::user(1000, 1000)));

        std::size_t emitted = 0;
        for (std::size_t round = 0; emitted < min_events; ++round) {
            for (std::size_t p = 0; p < procs.size(); ++p) {
                auto& proc = procs[p];
                const auto salt = round * 31 + p * 7;
                const std::string path = fx.scratch + "/f" +
                                         std::to_string(p) + "_" +
                                         std::to_string(round % 13);
                const std::uint32_t flags =
                    salt % 3 == 0 ? abi::O_RDWR | abi::O_CREAT
                    : salt % 3 == 1
                        ? abi::O_WRONLY | abi::O_CREAT | abi::O_APPEND
                        : abi::O_RDONLY | abi::O_CREAT;
                const auto fd = static_cast<int>(
                    proc.sys_open(path.c_str(), flags, 0644));
                proc.sys_write(fd, syscall::WriteSrc::pattern(
                                       std::uint64_t{1} << (salt % 14),
                                       std::byte{0x5a}));
                proc.sys_lseek(fd, 0, salt % 4 == 0 ? abi::SEEK_END_
                                                    : abi::SEEK_SET_);
                proc.sys_read(fd,
                              syscall::ReadDst::discard(1u << (salt % 10)));
                proc.sys_close(fd);
                emitted += 5;
                if (salt % 5 == 0) {
                    proc.sys_open("/outside/the/mount", abi::O_RDONLY);
                    ++emitted;
                }
                if (salt % 11 == 0) {
                    proc.sys_mkdir((path + ".d").c_str(), 0755);
                    proc.sys_chmod(path.c_str(), salt % 2 ? 0600 : 0444);
                    emitted += 2;
                }
            }
        }
    }  // BinarySink finishes (footer) here
    return {text_os.str(), binary_os.str()};
}

TEST(BinaryPipeline, BinaryMatchesTextBitIdenticallyOn100kEvents) {
    const auto traces = twin_traces(100000);
    ASSERT_TRUE(trace::is_ioct(traces.binary));
    ASSERT_FALSE(trace::is_ioct(traces.text));
    // Binary beats text on size too; the 3x is throughput, this is tape.
    EXPECT_LT(traces.binary.size(), traces.text.size());

    const auto config = trace::FilterConfig::mount_point("/mnt/test");
    IOCov from_text(config);
    std::istringstream text_in(traces.text);
    const auto text_dropped = from_text.consume_text(text_in);

    IOCov serial(config);
    const auto serial_dropped = serial.consume_binary(traces.binary);

    IOCov parallel(config);
    const auto parallel_dropped =
        parallel.consume_binary_parallel(traces.binary, 4);

    EXPECT_EQ(text_dropped, 0u);
    EXPECT_EQ(serial_dropped, 0u);
    EXPECT_EQ(parallel_dropped, 0u);
    EXPECT_GT(from_text.events_filtered_out(), 0u);  // filter really ran
    EXPECT_EQ(serial.events_filtered_out(), from_text.events_filtered_out());
    EXPECT_EQ(parallel.events_filtered_out(),
              from_text.events_filtered_out());
    // The headline guarantee, both ways: binary serial == text serial,
    // and the sharded binary path == both.
    EXPECT_EQ(serial.report(), from_text.report());
    EXPECT_EQ(parallel.report(), from_text.report());
}

TEST(BinaryPipeline, ThreadCountDoesNotChangeTheReport) {
    const auto traces = twin_traces(5000);
    const auto config = trace::FilterConfig::mount_point("/mnt/test");
    IOCov serial(config);
    serial.consume_binary(traces.binary);
    for (const unsigned n : {2u, 3u, 8u}) {
        IOCov parallel(config);
        parallel.consume_binary_parallel(traces.binary, n);
        EXPECT_EQ(parallel.report(), serial.report()) << n << " threads";
    }
}

TEST(BinaryPipeline, OneThreadFallsBackToSerialPath) {
    const auto traces = twin_traces(2000);
    const auto config = trace::FilterConfig::mount_point("/mnt/test");
    IOCov serial(config), one(config);
    EXPECT_EQ(serial.consume_binary(traces.binary),
              one.consume_binary_parallel(traces.binary, 1));
    EXPECT_EQ(one.report(), serial.report());
}

TEST(BinaryPipeline, TruncatedTraceDropsTailIdenticallyOnBothPaths) {
    const auto traces = twin_traces(5000);
    // Tear the file mid-record (guaranteed by cutting inside a scanned
    // payload): both paths must agree on the surviving report and on
    // the number of dropped records.
    const auto scan = trace::scan_ioct(traces.binary);
    const auto& tear = scan.events[scan.events.size() * 2 / 3];
    const std::string_view torn =
        std::string_view(traces.binary)
            .substr(0, tear.offset + tear.length / 2);
    const auto config = trace::FilterConfig::mount_point("/mnt/test");
    IOCov serial(config), parallel(config);
    const auto d1 = serial.consume_binary(torn);
    const auto d2 = parallel.consume_binary_parallel(torn, 4);
    EXPECT_EQ(d1, d2);
    EXPECT_GE(d1, 1u);
    EXPECT_GT(serial.report().events_seen, 0u);
    EXPECT_EQ(parallel.report(), serial.report());
}

TEST(BinaryPipeline, MmappedFileMatchesInMemoryBuffer) {
    const auto traces = twin_traces(3000);
    const auto path = std::filesystem::temp_directory_path() /
                      "iocov_test_pipeline.ioct";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(traces.binary.data(),
                  static_cast<std::streamsize>(traces.binary.size()));
    }
    const auto config = trace::FilterConfig::mount_point("/mnt/test");
    IOCov in_memory(config), from_file(config), from_file_parallel(config);
    in_memory.consume_binary(traces.binary);
    const auto d1 = from_file.consume_binary_file(path.string());
    const auto d4 = from_file_parallel.consume_binary_file(path.string(), 4);
    ASSERT_TRUE(d1.has_value());
    ASSERT_TRUE(d4.has_value());
    EXPECT_EQ(*d1, 0u);
    EXPECT_EQ(*d4, 0u);
    EXPECT_EQ(from_file.report(), in_memory.report());
    EXPECT_EQ(from_file_parallel.report(), in_memory.report());
    std::filesystem::remove(path);

    EXPECT_FALSE(
        IOCov(config).consume_binary_file("/no/such/file").has_value());
}

}  // namespace
}  // namespace iocov::core
