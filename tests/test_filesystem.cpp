// FileSystem namespace semantics: creation, lookup, links, removal,
// rename, and the POSIX error behaviour IOCov's output coverage needs.
#include "vfs/filesystem.hpp"

#include <gtest/gtest.h>

#include "abi/limits.hpp"

namespace iocov::vfs {
namespace {

using abi::Err;

class FileSystemTest : public ::testing::Test {
  protected:
    FsConfig small_config() {
        FsConfig cfg;
        cfg.capacity_blocks = 64;       // 256 KiB
        cfg.max_inodes = 32;
        cfg.max_links = 8;
        return cfg;
    }

    FileSystem fs_;
    Credentials root_ = Credentials::root();
    Credentials user_ = Credentials::user(1000, 1000);
};

TEST_F(FileSystemTest, RootExists) {
    const Inode* root = fs_.find(kRootInode);
    ASSERT_NE(root, nullptr);
    EXPECT_TRUE(root->is_dir());
    EXPECT_EQ(root->nlink, 2u);
}

TEST_F(FileSystemTest, CreateAndResolveFile) {
    auto ino = fs_.create_file(kRootInode, "f", 0644, root_);
    ASSERT_TRUE(ino.ok());
    auto resolved = fs_.resolve("/f", root_);
    ASSERT_TRUE(resolved.ok());
    EXPECT_EQ(resolved.value(), ino.value());
}

TEST_F(FileSystemTest, ResolveErrors) {
    EXPECT_EQ(fs_.resolve("", root_).error(), Err::ENOENT_);
    EXPECT_EQ(fs_.resolve("/missing", root_).error(), Err::ENOENT_);
    fs_.create_file(kRootInode, "f", 0644, root_);
    EXPECT_EQ(fs_.resolve("/f/below", root_).error(), Err::ENOTDIR_);
    EXPECT_EQ(fs_.resolve("/f/", root_).error(), Err::ENOTDIR_);
    const std::string long_name(abi::NAME_MAX_ + 1, 'x');
    EXPECT_EQ(fs_.resolve("/" + long_name, root_).error(),
              Err::ENAMETOOLONG_);
    const std::string long_path(abi::PATH_MAX_ + 10, 'p');
    EXPECT_EQ(fs_.resolve("/" + long_path, root_).error(),
              Err::ENAMETOOLONG_);
}

TEST_F(FileSystemTest, DotAndDotDotResolution) {
    auto d1 = fs_.make_dir(kRootInode, "d1", 0755, root_).value();
    auto d2 = fs_.make_dir(d1, "d2", 0755, root_).value();
    EXPECT_EQ(fs_.resolve("/d1/d2/..", root_).value(), d1);
    EXPECT_EQ(fs_.resolve("/d1/./d2", root_).value(), d2);
    // ".." above the root stays at the root, as POSIX requires.
    EXPECT_EQ(fs_.resolve("/../../d1", root_).value(), d1);
}

TEST_F(FileSystemTest, RelativeResolutionFromBase) {
    auto d1 = fs_.make_dir(kRootInode, "d1", 0755, root_).value();
    auto f = fs_.create_file(d1, "f", 0644, root_).value();
    ResolveOpts opts;
    opts.base = d1;
    EXPECT_EQ(fs_.resolve("f", root_, opts).value(), f);
}

TEST_F(FileSystemTest, SymlinkFollowedByDefault) {
    auto f = fs_.create_file(kRootInode, "target", 0644, root_).value();
    fs_.make_symlink(kRootInode, "link", "/target", root_);
    EXPECT_EQ(fs_.resolve("/link", root_).value(), f);
    // With follow_final=false the symlink inode itself comes back.
    ResolveOpts nofollow;
    nofollow.follow_final = false;
    auto link = fs_.resolve("/link", root_, nofollow);
    ASSERT_TRUE(link.ok());
    EXPECT_TRUE(fs_.find(link.value())->is_lnk());
}

TEST_F(FileSystemTest, RelativeSymlinkResolvesAgainstItsDirectory) {
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    auto f = fs_.create_file(d, "target", 0644, root_).value();
    fs_.make_symlink(d, "link", "target", root_);
    EXPECT_EQ(fs_.resolve("/d/link", root_).value(), f);
}

TEST_F(FileSystemTest, SymlinkLoopIsEloop) {
    fs_.make_symlink(kRootInode, "a", "/b", root_);
    fs_.make_symlink(kRootInode, "b", "/a", root_);
    EXPECT_EQ(fs_.resolve("/a", root_).error(), Err::ELOOP_);
}

TEST_F(FileSystemTest, IntermediateSymlinkAlwaysFollowed) {
    auto d = fs_.make_dir(kRootInode, "real", 0755, root_).value();
    auto f = fs_.create_file(d, "f", 0644, root_).value();
    fs_.make_symlink(kRootInode, "alias", "/real", root_);
    ResolveOpts nofollow;
    nofollow.follow_final = false;  // applies to the final component only
    EXPECT_EQ(fs_.resolve("/alias/f", root_, nofollow).value(), f);
}

TEST_F(FileSystemTest, ResolveNoSymlinksRejectsAnySymlink) {
    fs_.make_dir(kRootInode, "d", 0755, root_);
    fs_.make_symlink(kRootInode, "alias", "/d", root_);
    ResolveOpts opts;
    opts.no_symlinks = true;
    EXPECT_EQ(fs_.resolve("/alias", root_, opts).error(), Err::ELOOP_);
}

TEST_F(FileSystemTest, ResolveBeneathRejectsEscapes) {
    auto d = fs_.make_dir(kRootInode, "jail", 0755, root_).value();
    fs_.make_dir(d, "sub", 0755, root_);
    ResolveOpts opts;
    opts.base = d;
    opts.beneath = true;
    EXPECT_TRUE(fs_.resolve("sub", root_, opts).ok());
    EXPECT_TRUE(fs_.resolve("sub/..", root_, opts).ok());
    EXPECT_EQ(fs_.resolve("..", root_, opts).error(), Err::EXDEV_);
    EXPECT_EQ(fs_.resolve("/etc", root_, opts).error(), Err::EXDEV_);
    EXPECT_EQ(fs_.resolve("sub/../..", root_, opts).error(), Err::EXDEV_);
}

TEST_F(FileSystemTest, ResolveNoXdevStopsAtMountpoints) {
    auto d = fs_.make_dir(kRootInode, "mnt2", 0755, root_).value();
    fs_.find_mutable(d)->mountpoint = true;
    fs_.create_file(d, "f", 0644, root_);
    ResolveOpts opts;
    opts.no_xdev = true;
    EXPECT_EQ(fs_.resolve("/mnt2/f", root_, opts).error(), Err::EXDEV_);
    EXPECT_TRUE(fs_.resolve("/mnt2/f", root_).ok());
}

TEST_F(FileSystemTest, CreateErrors) {
    fs_.create_file(kRootInode, "f", 0644, root_);
    EXPECT_EQ(fs_.create_file(kRootInode, "f", 0644, root_).error(),
              Err::EEXIST_);
    EXPECT_EQ(fs_.create_file(kRootInode, "", 0644, root_).error(),
              Err::EEXIST_);
    EXPECT_EQ(fs_.create_file(kRootInode, ".", 0644, root_).error(),
              Err::EEXIST_);
    const std::string long_name(abi::NAME_MAX_ + 1, 'y');
    EXPECT_EQ(fs_.create_file(kRootInode, long_name, 0644, root_).error(),
              Err::ENAMETOOLONG_);
    auto f = fs_.resolve("/f", root_).value();
    EXPECT_EQ(fs_.create_file(f, "child", 0644, root_).error(),
              Err::ENOTDIR_);
}

TEST_F(FileSystemTest, CreateOnReadOnlyFsIsErofs) {
    fs_.set_read_only(true);
    EXPECT_EQ(fs_.create_file(kRootInode, "f", 0644, root_).error(),
              Err::EROFS_);
    EXPECT_EQ(fs_.make_dir(kRootInode, "d", 0755, root_).error(),
              Err::EROFS_);
}

TEST_F(FileSystemTest, InodeExhaustionIsEnospc) {
    FileSystem fs(small_config());
    for (int i = 0; i < 31; ++i) {  // root already uses one of 32
        auto r = fs.create_file(kRootInode, "f" + std::to_string(i), 0644,
                                root_);
        ASSERT_TRUE(r.ok()) << i;
    }
    EXPECT_EQ(fs.create_file(kRootInode, "straw", 0644, root_).error(),
              Err::ENOSPC_);
}

TEST_F(FileSystemTest, MkdirMaintainsLinkCounts) {
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    EXPECT_EQ(fs_.find(d)->nlink, 2u);
    EXPECT_EQ(fs_.find(kRootInode)->nlink, 3u);  // root gained d's ".."
    fs_.make_dir(d, "sub", 0755, root_);
    EXPECT_EQ(fs_.find(d)->nlink, 3u);
}

TEST_F(FileSystemTest, MaxLinksOnDirIsEmlink) {
    FileSystem fs(small_config());  // max_links = 8
    auto d = fs.make_dir(kRootInode, "d", 0755, root_).value();
    for (unsigned i = 0; i + 2 < 8; ++i)
        ASSERT_TRUE(
            fs.make_dir(d, "s" + std::to_string(i), 0755, root_).ok());
    EXPECT_EQ(fs.make_dir(d, "one-too-many", 0755, root_).error(),
              Err::EMLINK_);
}

TEST_F(FileSystemTest, HardLinks) {
    auto f = fs_.create_file(kRootInode, "f", 0644, root_).value();
    ASSERT_TRUE(fs_.link(f, kRootInode, "hard", root_).ok());
    EXPECT_EQ(fs_.find(f)->nlink, 2u);
    EXPECT_EQ(fs_.resolve("/hard", root_).value(), f);
    // Hard links to directories are forbidden.
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    EXPECT_EQ(fs_.link(d, kRootInode, "dlink", root_).error(), Err::EPERM_);
}

TEST_F(FileSystemTest, HardLinkAtMaxLinksIsEmlink) {
    FileSystem fs(small_config());
    auto f = fs.create_file(kRootInode, "f", 0644, root_).value();
    for (unsigned i = 1; i < 8; ++i)
        ASSERT_TRUE(fs.link(f, kRootInode, "l" + std::to_string(i), root_)
                        .ok());
    EXPECT_EQ(fs.link(f, kRootInode, "l8", root_).error(), Err::EMLINK_);
}

TEST_F(FileSystemTest, UnlinkFreesInodeAtZeroLinks) {
    auto f = fs_.create_file(kRootInode, "f", 0644, root_).value();
    fs_.link(f, kRootInode, "hard", root_);
    ASSERT_TRUE(fs_.unlink(kRootInode, "f", root_).ok());
    EXPECT_NE(fs_.find(f), nullptr);  // still alive via "hard"
    ASSERT_TRUE(fs_.unlink(kRootInode, "hard", root_).ok());
    EXPECT_EQ(fs_.find(f), nullptr);
}

TEST_F(FileSystemTest, UnlinkErrors) {
    EXPECT_EQ(fs_.unlink(kRootInode, "missing", root_).error(),
              Err::ENOENT_);
    fs_.make_dir(kRootInode, "d", 0755, root_);
    EXPECT_EQ(fs_.unlink(kRootInode, "d", root_).error(), Err::EISDIR_);
}

TEST_F(FileSystemTest, StickyDirectoryRestrictsUnlink) {
    auto d = fs_.make_dir(kRootInode, "tmp", 0777 | abi::S_ISVTX, root_)
                 .value();
    fs_.create_file(d, "rootfile", 0666, root_);
    // Another user cannot remove root's file from the sticky dir.
    EXPECT_EQ(fs_.unlink(d, "rootfile", user_).error(), Err::EPERM_);
    // But root (and the file's owner) can.
    EXPECT_TRUE(fs_.unlink(d, "rootfile", root_).ok());
}

TEST_F(FileSystemTest, RemoveDirSemantics) {
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    fs_.create_file(d, "f", 0644, root_);
    EXPECT_EQ(fs_.remove_dir(kRootInode, "d", root_).error(),
              Err::ENOTEMPTY_);
    fs_.unlink(d, "f", root_);
    EXPECT_TRUE(fs_.remove_dir(kRootInode, "d", root_).ok());
    EXPECT_EQ(fs_.find(d), nullptr);
    EXPECT_EQ(fs_.find(kRootInode)->nlink, 2u);  // ".." link returned
}

TEST_F(FileSystemTest, RemoveDirErrors) {
    fs_.create_file(kRootInode, "f", 0644, root_);
    EXPECT_EQ(fs_.remove_dir(kRootInode, "f", root_).error(),
              Err::ENOTDIR_);
    EXPECT_EQ(fs_.remove_dir(kRootInode, ".", root_).error(), Err::EINVAL_);
    EXPECT_EQ(fs_.remove_dir(kRootInode, "..", root_).error(),
              Err::ENOTEMPTY_);
    auto d = fs_.make_dir(kRootInode, "m", 0755, root_).value();
    fs_.find_mutable(d)->mountpoint = true;
    EXPECT_EQ(fs_.remove_dir(kRootInode, "m", root_).error(), Err::EBUSY_);
}

TEST_F(FileSystemTest, RenameBasic) {
    auto f = fs_.create_file(kRootInode, "old", 0644, root_).value();
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    ASSERT_TRUE(fs_.rename(kRootInode, "old", d, "new", root_).ok());
    EXPECT_EQ(fs_.resolve("/d/new", root_).value(), f);
    EXPECT_EQ(fs_.resolve("/old", root_).error(), Err::ENOENT_);
}

TEST_F(FileSystemTest, RenameReplacesExistingFile) {
    auto f = fs_.create_file(kRootInode, "src", 0644, root_).value();
    auto victim = fs_.create_file(kRootInode, "dst", 0644, root_).value();
    ASSERT_TRUE(fs_.rename(kRootInode, "src", kRootInode, "dst", root_)
                    .ok());
    EXPECT_EQ(fs_.resolve("/dst", root_).value(), f);
    EXPECT_EQ(fs_.find(victim), nullptr);
}

TEST_F(FileSystemTest, RenameDirUpdatesParentLinkCounts) {
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    auto e = fs_.make_dir(kRootInode, "e", 0755, root_).value();
    const auto root_links = fs_.find(kRootInode)->nlink;
    ASSERT_TRUE(fs_.rename(kRootInode, "d", e, "d2", root_).ok());
    EXPECT_EQ(fs_.find(kRootInode)->nlink, root_links - 1);
    EXPECT_EQ(fs_.find(e)->nlink, 3u);
    EXPECT_EQ(fs_.find(d)->parent, e);
}

TEST_F(FileSystemTest, RenameIntoOwnSubtreeIsEinval) {
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    auto sub = fs_.make_dir(d, "sub", 0755, root_).value();
    EXPECT_EQ(fs_.rename(kRootInode, "d", sub, "oops", root_).error(),
              Err::EINVAL_);
}

TEST_F(FileSystemTest, RenameDirOverNonEmptyDirIsEnotempty) {
    fs_.make_dir(kRootInode, "src", 0755, root_);
    auto dst = fs_.make_dir(kRootInode, "dst", 0755, root_).value();
    fs_.create_file(dst, "occupant", 0644, root_);
    EXPECT_EQ(
        fs_.rename(kRootInode, "src", kRootInode, "dst", root_).error(),
        Err::ENOTEMPTY_);
}

TEST_F(FileSystemTest, RenameFileOverDirIsEisdir) {
    fs_.create_file(kRootInode, "f", 0644, root_);
    fs_.make_dir(kRootInode, "d", 0755, root_);
    EXPECT_EQ(fs_.rename(kRootInode, "f", kRootInode, "d", root_).error(),
              Err::EISDIR_);
}

TEST_F(FileSystemTest, RenameToSameInodeIsNoOp) {
    auto f = fs_.create_file(kRootInode, "f", 0644, root_).value();
    fs_.link(f, kRootInode, "alias", root_);
    ASSERT_TRUE(
        fs_.rename(kRootInode, "f", kRootInode, "alias", root_).ok());
    // POSIX: both names must still exist.
    EXPECT_TRUE(fs_.resolve("/f", root_).ok());
    EXPECT_TRUE(fs_.resolve("/alias", root_).ok());
}

TEST_F(FileSystemTest, ResolveParentSplitsFinalComponent) {
    auto d = fs_.make_dir(kRootInode, "d", 0755, root_).value();
    auto pn = fs_.resolve_parent("/d/newfile", root_);
    ASSERT_TRUE(pn.ok());
    EXPECT_EQ(pn.value().parent, d);
    EXPECT_EQ(pn.value().name, "newfile");
    EXPECT_FALSE(pn.value().trailing_slash);

    auto slash = fs_.resolve_parent("/d/sub/", root_);
    ASSERT_TRUE(slash.ok());
    EXPECT_TRUE(slash.value().trailing_slash);

    auto root_path = fs_.resolve_parent("/", root_);
    ASSERT_TRUE(root_path.ok());
    EXPECT_TRUE(root_path.value().name.empty());
}

TEST_F(FileSystemTest, AnonymousInodesLiveUntilReleased) {
    auto ino = fs_.create_anonymous(kRootInode, 0600, root_);
    ASSERT_TRUE(ino.ok());
    EXPECT_NE(fs_.find(ino.value()), nullptr);
    // Not reachable by name.
    EXPECT_EQ(fs_.find(kRootInode)->dirents.size(), 0u);
    fs_.release_anonymous(ino.value());
    EXPECT_EQ(fs_.find(ino.value()), nullptr);
}

TEST_F(FileSystemTest, UsageTracksInodesAndBlocks) {
    const auto before = fs_.usage();
    auto f = fs_.create_file(kRootInode, "f", 0644, root_).value();
    fs_.write_pattern(f, 0, 8192, std::byte{1});
    const auto after = fs_.usage();
    EXPECT_EQ(after.used_inodes, before.used_inodes + 1);
    EXPECT_EQ(after.used_blocks, before.used_blocks + 2);
    fs_.unlink(kRootInode, "f", root_);
    EXPECT_EQ(fs_.usage().used_blocks, before.used_blocks);
}

}  // namespace
}  // namespace iocov::vfs
