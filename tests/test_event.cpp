#include "trace/event.hpp"

#include "trace/sink.hpp"

#include <gtest/gtest.h>

namespace iocov::trace {
namespace {

TraceEvent sample() {
    TraceEvent ev;
    ev.syscall = "probe";
    ev.args = {{"i", ArgValue{std::int64_t{-7}}},
               {"u", ArgValue{std::uint64_t{42}}},
               {"s", ArgValue{std::string("hello")}}};
    ev.ret = 0;
    return ev;
}

TEST(TraceEvent, FindArgByName) {
    const auto ev = sample();
    ASSERT_NE(ev.find_arg("u"), nullptr);
    EXPECT_EQ(ev.find_arg("u")->name, "u");
    EXPECT_EQ(ev.find_arg("nope"), nullptr);
}

TEST(TraceEvent, TypedAccessors) {
    const auto ev = sample();
    EXPECT_EQ(*ev.int_arg("i"), -7);
    EXPECT_EQ(*ev.uint_arg("u"), 42u);
    EXPECT_EQ(*ev.str_arg("s"), "hello");
    EXPECT_FALSE(ev.int_arg("missing").has_value());
    EXPECT_FALSE(ev.str_arg("missing").has_value());
}

TEST(TraceEvent, SignedUnsignedInterconvert) {
    const auto ev = sample();
    // int stored, uint requested: two's complement reinterpretation.
    EXPECT_EQ(*ev.uint_arg("i"), static_cast<std::uint64_t>(-7));
    // uint stored, int requested.
    EXPECT_EQ(*ev.int_arg("u"), 42);
    // string never converts to a number.
    EXPECT_FALSE(ev.int_arg("s").has_value());
    EXPECT_FALSE(ev.uint_arg("s").has_value());
}

TEST(TraceEvent, OkReflectsKernelConvention) {
    auto ev = sample();
    EXPECT_TRUE(ev.ok());
    ev.ret = -2;
    EXPECT_FALSE(ev.ok());
}

TEST(TraceSinks, BufferCallbackTeeAndNull) {
    TraceBuffer buffer;
    int callback_hits = 0;
    CallbackSink cb([&](const TraceEvent&) { ++callback_hits; });
    NullSink null;
    TeeSink tee(buffer, cb);
    const auto ev = sample();
    tee.emit(ev);
    null.emit(ev);
    EXPECT_EQ(buffer.size(), 1u);
    EXPECT_EQ(callback_hits, 1);
    EXPECT_EQ(buffer.events()[0], ev);
    buffer.clear();
    EXPECT_TRUE(buffer.empty());
}

}  // namespace
}  // namespace iocov::trace
