// open/openat/creat/openat2 semantics, including every error path the
// paper's Fig. 4 output coverage enumerates.
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::syscall {
namespace {

using namespace iocov::abi;  // NOLINT
using testers::Fixtures;

class OpenTest : public ::testing::Test {
  protected:
    OpenTest()
        : fs_(config()),
          fx_(testers::prepare_environment(fs_, "/mnt/test")),
          kernel_(fs_, &buffer_),
          root_(kernel_.make_process(1, vfs::Credentials::root())),
          user_(kernel_.make_process(2, vfs::Credentials::user(1000, 1000))) {
    }

    static vfs::FsConfig config() {
        vfs::FsConfig cfg;
        cfg.capacity_blocks = 1 << 16;
        return cfg;
    }

    std::string scratch(const std::string& name) {
        return fx_.scratch + "/" + name;
    }

    vfs::FileSystem fs_;
    Fixtures fx_;
    trace::TraceBuffer buffer_;
    Kernel kernel_;
    Process root_;
    Process user_;
};

TEST_F(OpenTest, CreateAndReuseFd) {
    const auto fd = user_.sys_open(scratch("f").c_str(),
                                   O_CREAT | O_WRONLY, 0644);
    EXPECT_GE(fd, 3);
    EXPECT_EQ(user_.sys_close(static_cast<int>(fd)), 0);
    // Lowest free fd is reused.
    EXPECT_EQ(user_.sys_open(scratch("f").c_str(), O_RDONLY), fd);
}

TEST_F(OpenTest, FdsAllocateLowestFree) {
    const auto a = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    const auto b = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    const auto c = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    EXPECT_EQ(b, a + 1);
    EXPECT_EQ(c, a + 2);
    user_.sys_close(static_cast<int>(b));
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY), b);
}

TEST_F(OpenTest, EnoentOnMissingPath) {
    EXPECT_EQ(user_.sys_open(scratch("missing").c_str(), O_RDONLY),
              fail(Err::ENOENT_));
}

TEST_F(OpenTest, EexistWithExcl) {
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(),
                             O_CREAT | O_EXCL | O_WRONLY, 0644),
              fail(Err::EEXIST_));
}

TEST_F(OpenTest, ExclRefusesDanglingSymlink) {
    // POSIX: O_CREAT|O_EXCL fails with EEXIST even when the name is a
    // dangling symlink.
    EXPECT_EQ(user_.sys_open(fx_.dangling_link.c_str(),
                             O_CREAT | O_EXCL | O_WRONLY, 0644),
              fail(Err::EEXIST_));
}

TEST_F(OpenTest, EisdirOnWritingDirectory) {
    EXPECT_EQ(user_.sys_open(fx_.scratch.c_str(), O_WRONLY),
              fail(Err::EISDIR_));
    EXPECT_EQ(user_.sys_open(fx_.scratch.c_str(), O_RDWR),
              fail(Err::EISDIR_));
    EXPECT_GE(user_.sys_open(fx_.scratch.c_str(), O_RDONLY), 0);
}

TEST_F(OpenTest, EnotdirVariants) {
    EXPECT_EQ(user_.sys_open((fx_.plain_file + "/x").c_str(), O_RDONLY),
              fail(Err::ENOTDIR_));
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(),
                             O_RDONLY | O_DIRECTORY),
              fail(Err::ENOTDIR_));
}

TEST_F(OpenTest, EaccesOnPermissionDenied) {
    EXPECT_EQ(user_.sys_open(fx_.noperm_file.c_str(), O_RDONLY),
              fail(Err::EACCES_));
    // Missing search permission on a path component.
    EXPECT_EQ(user_.sys_open((fx_.noperm_dir + "/inside").c_str(),
                             O_RDONLY),
              fail(Err::EACCES_));
    // Root bypasses both.
    EXPECT_GE(root_.sys_open(fx_.noperm_file.c_str(), O_RDONLY), 0);
}

TEST_F(OpenTest, EloopOnSymlinkLoopAndNofollow) {
    EXPECT_EQ(user_.sys_open(fx_.loop_link.c_str(), O_RDONLY),
              fail(Err::ELOOP_));
    // O_NOFOLLOW on a (healthy) symlink is also ELOOP...
    fs_.make_symlink(fs_.resolve(fx_.scratch,
                                 vfs::Credentials::root()).value(),
                     "ln", fx_.plain_file, vfs::Credentials::root());
    EXPECT_EQ(user_.sys_open(scratch("ln").c_str(),
                             O_RDONLY | O_NOFOLLOW),
              fail(Err::ELOOP_));
    // ...unless O_PATH asks for the link itself.
    EXPECT_GE(user_.sys_open(scratch("ln").c_str(),
                             O_RDONLY | O_NOFOLLOW | O_PATH),
              0);
}

TEST_F(OpenTest, EinvalOnBadAccessMode) {
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(), O_ACCMODE),
              fail(Err::EINVAL_));
}

TEST_F(OpenTest, EnametoolongOnHugeComponent) {
    const std::string path = fx_.scratch + "/" + std::string(300, 'n');
    EXPECT_EQ(user_.sys_open(path.c_str(), O_RDONLY),
              fail(Err::ENAMETOOLONG_));
}

TEST_F(OpenTest, ErofsOnReadOnlyMount) {
    fs_.set_read_only(true);
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(), O_WRONLY),
              fail(Err::EROFS_));
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(),
                             O_RDONLY | O_TRUNC),
              fail(Err::EROFS_));
    EXPECT_EQ(user_.sys_open(scratch("new").c_str(), O_CREAT | O_WRONLY,
                             0644),
              fail(Err::EROFS_));
    // Reading still works.
    EXPECT_GE(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
}

TEST_F(OpenTest, DeviceStatesMapToErrnos) {
    EXPECT_EQ(user_.sys_open(fx_.busy_dev.c_str(), O_RDONLY),
              fail(Err::EBUSY_));
    EXPECT_EQ(root_.sys_open(fx_.nodriver_dev.c_str(), O_RDONLY),
              fail(Err::ENODEV_));
    EXPECT_EQ(root_.sys_open(fx_.nounit_dev.c_str(), O_RDONLY),
              fail(Err::ENXIO_));
    // O_PATH bypasses device checks.
    EXPECT_GE(user_.sys_open(fx_.busy_dev.c_str(), O_RDONLY | O_PATH), 0);
}

TEST_F(OpenTest, FifoWriterWithoutReaderIsEnxio) {
    EXPECT_EQ(user_.sys_open(fx_.fifo.c_str(), O_WRONLY | O_NONBLOCK),
              fail(Err::ENXIO_));
}

TEST_F(OpenTest, EtxtbsyOnRunningExecutable) {
    EXPECT_EQ(root_.sys_open(fx_.running_exe.c_str(), O_WRONLY),
              fail(Err::ETXTBSY_));
    EXPECT_GE(root_.sys_open(fx_.running_exe.c_str(), O_RDONLY), 0);
}

TEST_F(OpenTest, EoverflowWithout32BitLargefile) {
    user_.set_large_file_default(false);
    EXPECT_EQ(user_.sys_open(fx_.big_file.c_str(), O_RDONLY),
              fail(Err::EOVERFLOW_));
    EXPECT_GE(user_.sys_open(fx_.big_file.c_str(),
                             O_RDONLY | O_LARGEFILE),
              0);
    user_.set_large_file_default(true);
    EXPECT_GE(user_.sys_open(fx_.big_file.c_str(), O_RDONLY), 0);
}

TEST_F(OpenTest, EpermOnForeignNoatime) {
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(),
                             O_RDONLY | O_NOATIME),
              fail(Err::EPERM_));
    EXPECT_GE(root_.sys_open(fx_.plain_file.c_str(),
                             O_RDONLY | O_NOATIME),
              0);
}

TEST_F(OpenTest, EfaultOnNullPath) {
    EXPECT_EQ(user_.sys_open(nullptr, O_RDONLY), fail(Err::EFAULT_));
}

TEST_F(OpenTest, EmfileAtProcessFdLimit) {
    auto limits = kernel_.limits();
    limits.max_fds_per_process = 2;
    kernel_.set_limits(limits);
    ASSERT_GE(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
    ASSERT_GE(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY),
              fail(Err::EMFILE_));
}

TEST_F(OpenTest, EnfileAtSystemFileLimit) {
    auto limits = kernel_.limits();
    limits.max_open_files = 1;
    kernel_.set_limits(limits);
    ASSERT_GE(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
    EXPECT_EQ(root_.sys_open(fx_.plain_file.c_str(), O_RDONLY),
              fail(Err::ENFILE_));
}

TEST_F(OpenTest, TruncOnOpenEmptiesFile) {
    auto st = fs_.stat(fs_.resolve(fx_.plain_file,
                                   vfs::Credentials::root()).value());
    ASSERT_GT(st.value().size, 0u);
    const auto fd = root_.sys_open(fx_.plain_file.c_str(),
                                   O_WRONLY | O_TRUNC);
    ASSERT_GE(fd, 0);
    st = fs_.stat(fs_.resolve(fx_.plain_file,
                              vfs::Credentials::root()).value());
    EXPECT_EQ(st.value().size, 0u);
}

TEST_F(OpenTest, CreatIsOpenWithCreatWronlyTrunc) {
    const auto fd = user_.sys_creat(scratch("c").c_str(), 0600);
    ASSERT_GE(fd, 0);
    const auto* desc = user_.fd_entry(static_cast<int>(fd));
    ASSERT_NE(desc, nullptr);
    EXPECT_TRUE(desc->writable());
    EXPECT_FALSE(desc->readable());
}

TEST_F(OpenTest, UmaskAppliesToCreation) {
    user_.set_umask(027);
    const auto fd = user_.sys_open(scratch("masked").c_str(),
                                   O_CREAT | O_WRONLY, 0777);
    ASSERT_GE(fd, 0);
    const auto* desc = user_.fd_entry(static_cast<int>(fd));
    EXPECT_EQ(fs_.find(desc->ino)->perms(), 0750u);
}

TEST_F(OpenTest, OpenatResolvesRelativeToDfd) {
    const auto dfd = user_.sys_open(fx_.scratch.c_str(),
                                    O_RDONLY | O_DIRECTORY);
    ASSERT_GE(dfd, 0);
    const auto fd = user_.sys_openat(static_cast<int>(dfd), "via_dfd",
                                     O_CREAT | O_WRONLY, 0644);
    EXPECT_GE(fd, 0);
    EXPECT_TRUE(fs_.resolve(scratch("via_dfd"),
                            vfs::Credentials::root()).ok());
    // Bad dfd cases.
    EXPECT_EQ(user_.sys_openat(999, "x", O_RDONLY), fail(Err::EBADF_));
    const auto ffd = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_openat(static_cast<int>(ffd), "x", O_RDONLY),
              fail(Err::ENOTDIR_));
    // Absolute paths ignore the dfd entirely.
    EXPECT_GE(user_.sys_openat(999, fx_.plain_file.c_str(), O_RDONLY), 0);
}

TEST_F(OpenTest, TmpfileCreatesAnonymousInode) {
    const auto inodes_before = fs_.inode_count();
    const auto fd = user_.sys_open(fx_.scratch.c_str(),
                                   O_TMPFILE | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(fs_.inode_count(), inodes_before + 1);
    // Not reachable by name; freed on close.
    EXPECT_EQ(user_.sys_close(static_cast<int>(fd)), 0);
    EXPECT_EQ(fs_.inode_count(), inodes_before);
}

TEST_F(OpenTest, TmpfileRequiresWriteAccess) {
    EXPECT_EQ(user_.sys_open(fx_.scratch.c_str(), O_TMPFILE | O_RDONLY,
                             0600),
              fail(Err::EINVAL_));
}

TEST_F(OpenTest, Openat2StrictValidation) {
    OpenHow how;
    how.flags = O_RDONLY | 0x10000000;  // unknown bit (O_PATH is known)
    how.flags = O_RDONLY | 0x40000000;  // definitely unknown
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how),
              fail(Err::EINVAL_));

    how = {};
    how.flags = O_RDONLY;
    how.mode = 0644;  // mode without O_CREAT/O_TMPFILE
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how),
              fail(Err::EINVAL_));

    how = {};
    how.flags = O_RDONLY;
    how.resolve = 0x8000;  // unknown resolve flag
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how),
              fail(Err::EINVAL_));

    how = {};
    how.flags = O_RDONLY;
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how, 32),
              fail(Err::E2BIG_));
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how, 16),
              fail(Err::EINVAL_));
    EXPECT_GE(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how), 0);
}

TEST_F(OpenTest, Openat2ResolveRestrictions) {
    OpenHow how;
    how.flags = O_RDONLY;
    how.resolve = RESOLVE_CACHED;
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how),
              fail(Err::EAGAIN_));

    how.resolve = RESOLVE_NO_SYMLINKS;
    const std::string via_link = fx_.fixture_dir + "/dangling";
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, via_link.c_str(), how),
              fail(Err::ELOOP_));

    how.resolve = RESOLVE_NO_XDEV;
    const std::string crossing = fx_.inner_mount + "/whatever";
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, crossing.c_str(), how),
              fail(Err::EXDEV_));

    // RESOLVE_BENEATH rejects absolute paths.
    how.resolve = RESOLVE_BENEATH;
    EXPECT_EQ(user_.sys_openat2(AT_FDCWD, fx_.plain_file.c_str(), how),
              fail(Err::EXDEV_));
}

TEST_F(OpenTest, FaultInjectionShortCircuitsOpen) {
    kernel_.faults().arm("open", Err::EINTR_);
    EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY),
              fail(Err::EINTR_));
    EXPECT_GE(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
}

TEST_F(OpenTest, EveryOpenEmitsOneTraceEvent) {
    buffer_.clear();
    user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    user_.sys_open(nullptr, O_RDONLY);
    user_.sys_creat(scratch("t").c_str(), 0644);
    ASSERT_EQ(buffer_.size(), 3u);
    EXPECT_EQ(buffer_.events()[0].syscall, "open");
    EXPECT_EQ(*buffer_.events()[0].str_arg("pathname"), fx_.plain_file);
    EXPECT_EQ(*buffer_.events()[1].str_arg("pathname"), "<fault>");
    EXPECT_EQ(buffer_.events()[2].syscall, "creat");
    EXPECT_FALSE(buffer_.events()[2].find_arg("flags"));  // creat has none
}

}  // namespace
}  // namespace iocov::syscall
