// Extended syscall registry: tracking unlink/rename/symlink/link/fsync
// on top of the paper's 27 (the §6 "support more syscalls" extension).
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "core/coverage.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::core {
namespace {

using namespace iocov::abi;  // NOLINT

TEST(ExtendedRegistry, SupersetOfTheBaseRegistry) {
    const auto& base = syscall_registry();
    const auto& ext = extended_syscall_registry();
    EXPECT_EQ(ext.size(), base.size() + 5);
    for (const auto& spec : base)
        EXPECT_NE(find_spec(spec.base, ext), nullptr) << spec.base;
    EXPECT_NE(find_spec("unlink", ext), nullptr);
    EXPECT_NE(find_spec("fsync", ext), nullptr);
    // The base registry still matches the paper's totals.
    EXPECT_EQ(tracked_variant_count(), 27u);
}

TEST(ExtendedRegistry, VariantResolutionPerRegistry) {
    EXPECT_FALSE(base_of_variant("fdatasync").has_value());
    EXPECT_EQ(*base_of_variant("fdatasync", extended_syscall_registry()),
              "fsync");
    EXPECT_EQ(*base_of_variant("rmdir", extended_syscall_registry()),
              "unlink");
}

TEST(ExtendedRegistry, AnalyzerTracksTheExtraSyscalls) {
    vfs::FileSystem fs;
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fs, &buffer);
    auto proc = kernel.make_process(1, vfs::Credentials::user(1000, 1000));

    const auto path = fx.scratch + "/ext";
    const auto fd = proc.sys_open(path.c_str(), O_CREAT | O_WRONLY, 0644);
    proc.sys_fsync(static_cast<int>(fd));
    proc.sys_fdatasync(static_cast<int>(fd));
    proc.sys_close(static_cast<int>(fd));
    proc.sys_rename(path.c_str(), (fx.scratch + "/ext2").c_str());
    proc.sys_symlink("/mnt/test/scratch/ext2",
                     (fx.scratch + "/lnk").c_str());
    proc.sys_unlink((fx.scratch + "/ext2").c_str());
    proc.sys_unlink((fx.scratch + "/missing").c_str());

    // Base analyzer ignores all of those...
    Analyzer base;
    base.consume_all(buffer.events());
    EXPECT_EQ(base.report().find_output("unlink"), nullptr);

    // ...the extended analyzer reports them.
    Analyzer ext(extended_syscall_registry());
    ext.consume_all(buffer.events());
    const auto* unlink_out = ext.report().find_output("unlink");
    ASSERT_NE(unlink_out, nullptr);
    EXPECT_EQ(unlink_out->hist.count("OK"), 1u);
    EXPECT_EQ(unlink_out->hist.count("ENOENT"), 1u);
    const auto* fsync_out = ext.report().find_output("fsync");
    ASSERT_NE(fsync_out, nullptr);
    EXPECT_EQ(fsync_out->hist.count("OK"), 2u);  // fsync + fdatasync merged
    const auto* fsync_fd = ext.report().find_input("fsync", "fd");
    ASSERT_NE(fsync_fd, nullptr);
    EXPECT_EQ(fsync_fd->hist.count("valid(>=3)"), 2u);
    // rename/symlink identifier coverage.
    EXPECT_EQ(ext.report()
                  .find_input("rename", "oldpath")
                  ->hist.count("absolute"),
              1u);
    EXPECT_GT(ext.report().events_tracked, base.report().events_tracked);
}

TEST(ExtendedRegistry, BaseBehaviourUnchangedUnderExtension) {
    trace::TraceEvent ev;
    ev.syscall = "open";
    ev.args = {{"pathname", trace::ArgValue{std::string("/mnt/test/f")}},
               {"flags", trace::ArgValue{std::uint64_t{O_RDONLY}}},
               {"mode", trace::ArgValue{std::uint64_t{0}}}};
    ev.ret = 3;
    Analyzer base;
    Analyzer ext(extended_syscall_registry());
    base.consume(ev);
    ext.consume(ev);
    EXPECT_EQ(base.report().find_input("open", "flags")->hist,
              ext.report().find_input("open", "flags")->hist);
}

TEST(ExtendedRegistry, TracksPositionalIoOffsets) {
    trace::TraceEvent ev;
    ev.syscall = "pwrite64";
    ev.args = {{"fd", trace::ArgValue{std::int64_t{3}}},
               {"count", trace::ArgValue{std::uint64_t{4096}}},
               {"pos", trace::ArgValue{std::int64_t{1 << 20}}}};
    ev.ret = 4096;
    Analyzer ext(extended_syscall_registry());
    ext.consume(ev);
    const auto* pos = ext.report().find_input("write", "pos");
    ASSERT_NE(pos, nullptr);
    EXPECT_EQ(pos->hist.count("2^20"), 1u);
    // A plain write carries no pos; the partition space is unaffected.
    ev.syscall = "write";
    ev.args.pop_back();
    ext.consume(ev);
    EXPECT_EQ(pos->hist.total(), 1u);
    // The base registry does not declare the argument at all.
    Analyzer base;
    EXPECT_EQ(base.report().find_input("write", "pos"), nullptr);
}

}  // namespace
}  // namespace iocov::core
