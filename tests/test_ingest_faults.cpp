// Fault-tolerant trace ingestion: corrupt records and malformed lines
// degrade to counted, diagnosed drops — never a poisoned analysis —
// and the parallel paths stay bit-identical to serial on the same
// damaged input.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/iocov.hpp"
#include "trace/binary_format.hpp"
#include "trace/diagnostics.hpp"
#include "trace/text_format.hpp"

namespace iocov {
namespace {

/// A multi-pid workload-ish trace confined to /mnt/test.
std::vector<trace::TraceEvent> sample_events(std::uint32_t pids,
                                             std::uint32_t per_pid) {
    std::vector<trace::TraceEvent> events;
    std::uint64_t seq = 0;
    for (std::uint32_t p = 1; p <= pids; ++p) {
        for (std::uint32_t i = 0; i < per_pid; ++i) {
            trace::TraceEvent open;
            open.seq = seq++;
            open.pid = 1000 + p;
            open.tid = 1000 + p;
            open.syscall = "open";
            open.args = {
                {"pathname",
                 trace::ArgValue{std::string("/mnt/test/f") +
                                 std::to_string(i % 5)}},
                {"flags", trace::ArgValue{std::uint64_t{i % 2 ? 0101u : 0u}}},
                {"mode", trace::ArgValue{std::uint64_t{0644}}}};
            open.ret = 3;
            events.push_back(open);

            trace::TraceEvent write;
            write.seq = seq++;
            write.pid = 1000 + p;
            write.tid = 1000 + p;
            write.syscall = "write";
            write.args = {{"fd", trace::ArgValue{std::int64_t{3}}},
                          {"count",
                           trace::ArgValue{std::uint64_t{1u << (i % 12)}}}};
            write.ret = static_cast<std::int64_t>(1u << (i % 12));
            events.push_back(write);

            trace::TraceEvent close;
            close.seq = seq++;
            close.pid = 1000 + p;
            close.tid = 1000 + p;
            close.syscall = "close";
            close.args = {{"fd", trace::ArgValue{std::int64_t{3}}}};
            close.ret = 0;
            events.push_back(close);
        }
    }
    return events;
}

TEST(IngestFaults, CorruptBinaryRecordIsolatedAndParallelMatchesSerial) {
    const auto events = sample_events(4, 40);
    std::string data = trace::encode_trace(events);

    // Corrupt one mid-file EVT payload: an unknown tag byte keeps the
    // length prefix intact, so exactly one record is lost.
    const auto intact = trace::scan_ioct(data);
    ASSERT_GT(intact.events.size(), 100u);
    const auto& victim = intact.events[intact.events.size() / 2];
    data[static_cast<std::size_t>(victim.offset)] = '\xee';

    core::IOCov serial;
    const std::size_t serial_dropped = serial.consume_binary(data);

    core::IOCov parallel;
    const std::size_t parallel_dropped =
        parallel.consume_binary_parallel(data, 4);

    EXPECT_EQ(serial_dropped, 1u);
    EXPECT_EQ(parallel_dropped, serial_dropped);
    // One corrupted shard-resident record must not cost any intact
    // record: everything else analyzes bit-identically to serial.
    EXPECT_EQ(parallel.report(), serial.report());
    EXPECT_EQ(parallel.shards_lost(), 0u);

    // The drop is diagnosed, not silent: offset and a stable reason.
    const auto& diags = parallel.diagnostics();
    ASSERT_EQ(diags.total(), 1u);
    ASSERT_EQ(diags.entries().size(), 1u);
    EXPECT_EQ(diags.entries()[0].reason, "unknown record tag");
    EXPECT_GT(diags.entries()[0].offset, 0u);
}

TEST(IngestFaults, TornBinaryTailDiagnosedInBothPaths) {
    const auto events = sample_events(2, 30);
    std::string data = trace::encode_trace(events);
    data.resize(data.size() - 3);  // tear inside the last record

    core::IOCov serial, parallel;
    const auto serial_dropped = serial.consume_binary(data);
    const auto parallel_dropped = parallel.consume_binary_parallel(data, 3);
    EXPECT_EQ(parallel_dropped, serial_dropped);
    EXPECT_EQ(parallel.report(), serial.report());
    EXPECT_GE(parallel.diagnostics().total(), 1u);
}

TEST(IngestFaults, MalformedTextLinesDiagnosedIdenticallyAcrossPaths) {
    const auto events = sample_events(3, 25);
    std::ostringstream text;
    std::uint64_t line = 1;
    std::vector<std::uint64_t> bad_lines;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i % 37 == 5) {
            text << "!! not a trace line " << i << "\n";
            bad_lines.push_back(line++);
        }
        text << trace::format_event(events[i]) << "\n";
        ++line;
    }

    core::IOCov serial;
    std::istringstream serial_in(text.str());
    const auto serial_dropped = serial.consume_text(serial_in);

    core::IOCov parallel;
    std::istringstream parallel_in(text.str());
    const auto parallel_dropped = parallel.consume_text_parallel(parallel_in,
                                                                 4);

    EXPECT_EQ(serial_dropped, bad_lines.size());
    EXPECT_EQ(parallel_dropped, serial_dropped);
    EXPECT_EQ(parallel.report(), serial.report());
    EXPECT_EQ(parallel.shards_lost(), 0u);

    // Diagnostics carry file-absolute line numbers in both paths: each
    // parallel chunk is positioned inside the whole input, so the
    // retained set is exactly the serial one.
    const auto& sd = serial.diagnostics();
    const auto& pd = parallel.diagnostics();
    ASSERT_EQ(sd.total(), bad_lines.size());
    EXPECT_EQ(pd.total(), sd.total());
    ASSERT_EQ(pd.entries().size(), sd.entries().size());
    for (std::size_t i = 0; i < sd.entries().size(); ++i) {
        EXPECT_EQ(pd.entries()[i].line, sd.entries()[i].line);
        EXPECT_EQ(pd.entries()[i].offset, sd.entries()[i].offset);
        EXPECT_EQ(pd.entries()[i].reason, sd.entries()[i].reason);
        EXPECT_EQ(pd.entries()[i].excerpt, sd.entries()[i].excerpt);
        EXPECT_EQ(sd.entries()[i].line, bad_lines[i]);
    }
}

TEST(IngestFaults, NotAnIoctBufferDiagnosedNotSilent) {
    core::IOCov iocov;
    const std::size_t dropped = iocov.consume_binary("garbage bytes");
    EXPECT_EQ(dropped, 0u);
    ASSERT_GE(iocov.diagnostics().total(), 1u);
    EXPECT_EQ(iocov.diagnostics().entries()[0].reason,
              "not an IOCT file (bad magic/version)");
}

TEST(IngestFaults, DiagnosticsAccumulateAcrossConsumeCalls) {
    core::IOCov iocov;
    std::istringstream a("junk line one\n");
    std::istringstream b("junk line two\n");
    iocov.consume_text(a);
    iocov.consume_text(b);
    EXPECT_EQ(iocov.diagnostics().total(), 2u);
}

}  // namespace
}  // namespace iocov
