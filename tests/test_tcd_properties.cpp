// Mathematical properties of the TCD metric (property-style sweeps).
#include <gtest/gtest.h>

#include <cmath>

#include "core/tcd.hpp"
#include "testers/rng.hpp"

namespace iocov::core {
namespace {

stats::PartitionHistogram random_hist(std::uint64_t seed, std::size_t n,
                                      std::uint64_t max_count) {
    testers::Rng rng(seed);
    stats::PartitionHistogram h;
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = rng.below(max_count + 1);
        h.add("p" + std::to_string(i), 0);
        if (c) h.add("p" + std::to_string(i), c);
    }
    return h;
}

class TcdProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcdProperty, NonNegativeAndZeroOnlyAtTarget) {
    const auto h = random_hist(GetParam(), 12, 100000);
    for (double t : {1.0, 10.0, 500.0, 1e6})
        EXPECT_GE(tcd_uniform(h, t), 0.0);
    // Exactly-on-target frequencies give zero.
    stats::PartitionHistogram exact;
    exact.add("a", 777);
    exact.add("b", 777);
    EXPECT_NEAR(tcd_uniform(exact, 777.0), 0.0, 1e-12);
}

TEST_P(TcdProperty, LogDomainScaleInvariance) {
    // Scaling every count and the target by the same factor k leaves
    // TCD unchanged for fully-tested histograms (log translation).
    const auto seed = GetParam();
    testers::Rng rng(seed);
    stats::PartitionHistogram h, h10;
    for (int i = 0; i < 10; ++i) {
        const auto c = rng.below(10000) + 1;  // nonzero: no log floor
        h.add("p" + std::to_string(i), c);
        h10.add("p" + std::to_string(i), c * 1000);
    }
    const double t = 500;
    EXPECT_NEAR(tcd_uniform(h, t), tcd_uniform(h10, t * 1000), 1e-9);
}

TEST_P(TcdProperty, MonotoneAwayFromUniformCounts) {
    // With all partitions at count c, TCD(t) = |log c - log t|: strictly
    // increasing as the target moves away from c in either direction.
    const double c = 1000;
    stats::PartitionHistogram h;
    for (int i = 0; i < 8; ++i)
        h.add("p" + std::to_string(i), static_cast<std::uint64_t>(c));
    double prev = tcd_uniform(h, c);
    for (double t = c * 2; t <= c * 1000; t *= 2) {
        const double cur = tcd_uniform(h, t);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
    prev = tcd_uniform(h, c);
    for (double t = c / 2; t >= 1; t /= 2) {
        const double cur = tcd_uniform(h, t);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

TEST_P(TcdProperty, PartitionOrderIrrelevant) {
    const auto h = random_hist(GetParam(), 9, 5000);
    stats::PartitionHistogram reversed;
    const auto& rows = h.rows();
    for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
        reversed.add(it->label, 0);
        if (it->count) reversed.add(it->label, it->count);
    }
    EXPECT_NEAR(tcd_uniform(h, 123.0), tcd_uniform(reversed, 123.0), 1e-12);
}

TEST_P(TcdProperty, AddingAnUntestedPartitionNeverImprovesTcd) {
    auto h = random_hist(GetParam(), 8, 5000);
    const double t = 1000;
    const double before = tcd_uniform(h, t);
    h.add("never_tested", 0);
    EXPECT_GE(tcd_uniform(h, t), before);
}

TEST_P(TcdProperty, PerfectTargetBeatsUniformTarget) {
    // A target array equal to the observed frequencies has TCD zero,
    // which no uniform target can beat on a non-uniform histogram.
    const auto h = random_hist(GetParam(), 10, 100000);
    std::vector<double> perfect;
    for (const auto& row : h.rows())
        perfect.push_back(static_cast<double>(row.count));
    EXPECT_NEAR(tcd(h, perfect), 0.0, 1e-12);
    EXPECT_GE(tcd_uniform(h, 1000.0), tcd(h, perfect));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcdProperty,
                         ::testing::Values(3, 7, 31, 127, 8191));

}  // namespace
}  // namespace iocov::core
