// Regression tests for the strict numeric parsers behind every CLI
// flag (host/parse.hpp).  The bugs these pin down: strtoul-based
// parsing silently turned junk into 0 (`--threads junk` ran serial)
// and saturated overflow (`--seed 18446744073709551616` became
// UINT64_MAX), both of which changed behavior without any diagnostic.
#include "host/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace {

using iocov::host::parse_f64;
using iocov::host::parse_u32;
using iocov::host::parse_u64;

TEST(ParseU64, AcceptsPlainDecimal) {
    std::uint64_t v = 99;
    EXPECT_TRUE(parse_u64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parse_u64("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parse_u64("18446744073709551615", v));
    EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsJunkEntirely) {
    std::uint64_t v = 7;
    EXPECT_FALSE(parse_u64("junk", v));
    EXPECT_FALSE(parse_u64("", v));
    EXPECT_FALSE(parse_u64(" 1", v));
    EXPECT_FALSE(parse_u64("1 ", v));
    EXPECT_FALSE(parse_u64("12x", v));   // trailing junk
    EXPECT_FALSE(parse_u64("0x10", v));  // no hex
    EXPECT_FALSE(parse_u64("1.5", v));
    EXPECT_EQ(v, 7u) << "failed parse must leave the output untouched";
}

TEST(ParseU64, RejectsSigns) {
    // strtoull accepts "-1" (wraps to UINT64_MAX) and "+1"; we don't.
    std::uint64_t v = 7;
    EXPECT_FALSE(parse_u64("-1", v));
    EXPECT_FALSE(parse_u64("+1", v));
    EXPECT_FALSE(parse_u64("-0", v));
    EXPECT_EQ(v, 7u);
}

TEST(ParseU64, RejectsOverflowInsteadOfSaturating) {
    std::uint64_t v = 7;
    // 2^64 — strtoull saturates this to UINT64_MAX with ERANGE; the
    // old call sites ignored errno and used the saturated value.
    EXPECT_FALSE(parse_u64("18446744073709551616", v));
    EXPECT_FALSE(parse_u64("99999999999999999999999999", v));
    EXPECT_EQ(v, 7u);
}

TEST(ParseU64, AcceptsLeadingZeros) {
    std::uint64_t v = 0;
    EXPECT_TRUE(parse_u64("007", v));
    EXPECT_EQ(v, 7u);
    // Leading zeros must not trip the overflow check on long strings.
    EXPECT_TRUE(parse_u64("0000000000000000000000042", v));
    EXPECT_EQ(v, 42u);
}

TEST(ParseU32, RejectsValuesBeyond32Bits) {
    std::uint32_t v = 7;
    EXPECT_TRUE(parse_u32("4294967295", v));
    EXPECT_EQ(v, std::numeric_limits<std::uint32_t>::max());
    EXPECT_FALSE(parse_u32("4294967296", v));
    EXPECT_FALSE(parse_u32("18446744073709551616", v));
    EXPECT_FALSE(parse_u32("junk", v));
    EXPECT_EQ(v, std::numeric_limits<std::uint32_t>::max());
}

TEST(ParseF64, AcceptsUsualShapes) {
    double v = -1;
    EXPECT_TRUE(parse_f64("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(parse_f64("1e3", v));
    EXPECT_DOUBLE_EQ(v, 1000.0);
    EXPECT_TRUE(parse_f64("-2.5", v));
    EXPECT_DOUBLE_EQ(v, -2.5);
    EXPECT_TRUE(parse_f64("1000", v));
    EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(ParseF64, RejectsJunkPartialAndNonFinite) {
    double v = 0.5;
    EXPECT_FALSE(parse_f64("", v));
    EXPECT_FALSE(parse_f64("abc", v));
    EXPECT_FALSE(parse_f64("1.5x", v));
    EXPECT_FALSE(parse_f64("1.5 ", v));
    EXPECT_FALSE(parse_f64("nan", v));
    EXPECT_FALSE(parse_f64("inf", v));
    EXPECT_FALSE(parse_f64("-inf", v));
    EXPECT_FALSE(parse_f64("1e999", v));  // overflows to inf
    EXPECT_DOUBLE_EQ(v, 0.5);
}

}  // namespace
