// Gap extraction (core/gap) and the partition-math hardening it relies
// on: TCD attribution, throwing size contracts, TargetBuilder label
// validation.
#include "core/gap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "core/tcd.hpp"
#include "stats/rmsd.hpp"
#include "testers/rng.hpp"

namespace iocov::core {
namespace {

CoverageReport make_report() {
    CoverageReport r;
    ArgCoverage count;
    count.base = "write";
    count.key = "count";
    count.hist.add("=0", 0);
    count.hist.add("2^0", 5);
    count.hist.add("2^1", 0);
    count.hist.add("2^2", 40);
    r.inputs.push_back(count);

    ArgCoverage flags;
    flags.base = "open";
    flags.key = "flags";
    flags.hist.add("O_RDONLY", 3);
    flags.hist.add("O_WRONLY", 0);
    r.inputs.push_back(flags);

    OutputCoverage out;
    out.base = "write";
    out.hist.add("OK", 10);
    out.hist.add("EBADF", 0);
    out.hist.add("EFBIG", 0);
    r.outputs.push_back(out);
    return r;
}

// The defining property: gap <=> count-0 partition, in both directions.
TEST(GapExtraction, GapsAreExactlyTheCountZeroPartitions) {
    const auto report = make_report();
    const auto gaps = extract_gaps(report, 10.0);

    std::set<std::string> ids;
    for (const auto& g : gaps.input_gaps) {
        EXPECT_EQ(g.kind, Gap::Kind::Input);
        const auto* in = report.find_input(g.base, g.arg);
        ASSERT_NE(in, nullptr) << g.id();
        EXPECT_EQ(in->hist.count(g.partition), 0u) << g.id();
        ids.insert(g.id());
    }
    for (const auto& g : gaps.output_gaps) {
        EXPECT_EQ(g.kind, Gap::Kind::Output);
        const auto* out = report.find_output(g.base);
        ASSERT_NE(out, nullptr) << g.id();
        EXPECT_EQ(out->hist.count(g.partition), 0u) << g.id();
        ids.insert(g.id());
    }
    const std::set<std::string> expected{
        "write.count:=0", "write.count:2^1", "open.flags:O_WRONLY",
        "write:EBADF", "write:EFBIG"};
    EXPECT_EQ(ids, expected);
    EXPECT_EQ(gaps.total_gaps(), 5u);
}

TEST(GapExtraction, EveryGapCarriesItsTcdShare) {
    const auto gaps = extract_gaps(make_report(), 10.0);
    for (const auto& g : gaps.input_gaps) EXPECT_GT(g.tcd_share, 0.0);
    for (const auto& g : gaps.output_gaps) EXPECT_GT(g.tcd_share, 0.0);
    // Within one space shares are ranked non-increasing (attribution
    // order), so the synthesizer addresses the biggest deviations first.
    for (std::size_t i = 1; i < gaps.input_gaps.size(); ++i) {
        const auto& prev = gaps.input_gaps[i - 1];
        const auto& cur = gaps.input_gaps[i];
        if (prev.base == cur.base && prev.arg == cur.arg)
            EXPECT_GE(prev.tcd_share, cur.tcd_share);
    }
}

TEST(GapExtraction, SpacesMirrorTheReportAndAggregateIsTheirMean) {
    const auto report = make_report();
    const double target = 10.0;
    const auto gaps = extract_gaps(report, target);
    ASSERT_EQ(gaps.spaces.size(), 3u);

    double sum = 0;
    for (const auto& s : gaps.spaces) sum += s.tcd;
    EXPECT_NEAR(gaps.aggregate_tcd, sum / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(gaps.target, target);

    const auto& wc = gaps.spaces[0];
    EXPECT_EQ(wc.base, "write");
    EXPECT_EQ(wc.arg, "count");
    EXPECT_EQ(wc.declared, 4u);
    EXPECT_EQ(wc.untested, 2u);
    EXPECT_NEAR(wc.tcd,
                tcd_uniform(report.inputs[0].hist, target), 1e-12);
}

TEST(GapExtraction, EmptyReportHasNoGaps) {
    const auto gaps = extract_gaps(CoverageReport{}, 10.0);
    EXPECT_EQ(gaps.total_gaps(), 0u);
    EXPECT_TRUE(gaps.spaces.empty());
    EXPECT_DOUBLE_EQ(gaps.aggregate_tcd, 0.0);
}

TEST(GapExtraction, ToStringMentionsEverySpace) {
    const auto s = extract_gaps(make_report(), 10.0).to_string();
    EXPECT_NE(s.find("write.count"), std::string::npos);
    EXPECT_NE(s.find("open.flags"), std::string::npos);
}

TEST(TcdAttribution, DeviationsSumToTcdSquared) {
    testers::Rng rng(99);
    stats::PartitionHistogram h;
    for (int i = 0; i < 11; ++i) {
        h.add("p" + std::to_string(i), 0);
        const auto c = rng.below(5000);
        if (c) h.add("p" + std::to_string(i), c);
    }
    const double target = 123.0;
    const auto contributions = tcd_attribution_uniform(h, target);
    ASSERT_EQ(contributions.size(), h.partition_count());
    double sum = 0;
    for (const auto& c : contributions) sum += c.deviation;
    const double t = tcd_uniform(h, target);
    EXPECT_NEAR(sum, t * t, 1e-9);
    // Ranked most-deviant first.
    for (std::size_t i = 1; i < contributions.size(); ++i)
        EXPECT_GE(contributions[i - 1].deviation, contributions[i].deviation);
}

TEST(TcdAttribution, UntestedPartitionsCarryTheFullLogDistance) {
    stats::PartitionHistogram h;
    h.add("hot", 1000);
    h.add("cold", 0);
    const auto contributions = tcd_attribution_uniform(h, 1000.0);
    ASSERT_EQ(contributions.size(), 2u);
    // "cold" deviates by log10(1000)^2 / 2; "hot" is exactly on target.
    EXPECT_EQ(contributions[0].label, "cold");
    EXPECT_TRUE(contributions[0].untested());
    EXPECT_NEAR(contributions[0].deviation, 9.0 / 2.0, 1e-12);
    EXPECT_FALSE(contributions[1].untested());
    EXPECT_NEAR(contributions[1].deviation, 0.0, 1e-12);
}

TEST(TcdHardening, SizeMismatchThrowsInsteadOfReadingOutOfBounds) {
    stats::PartitionHistogram h;
    h.add("a", 1);
    h.add("b", 2);
    h.add("c", 3);
    const std::vector<double> shorter{10.0, 10.0};
    // These were asserts before, i.e. out-of-bounds reads in NDEBUG
    // builds (the default config defines it).
    EXPECT_THROW(tcd(h, shorter), std::invalid_argument);
    EXPECT_THROW(tcd_linear(h, shorter), std::invalid_argument);
    EXPECT_THROW(tcd_attribution(h, shorter), std::invalid_argument);
    const std::vector<double> exact{10.0, 10.0, 10.0};
    EXPECT_NO_THROW(tcd(h, exact));
}

TEST(TargetBuilder, RecordsUnknownLabelsInsteadOfDroppingThem) {
    stats::PartitionHistogram h;
    h.add("O_RDONLY", 5);
    h.add("O_SYNC", 1);
    TargetBuilder builder(h, 10.0);
    builder.set("O_SYNC", 100.0)
        .boost("O_TYPO", 2.0)
        .set("also-missing", 7.0);
    EXPECT_EQ(builder.unknown_labels(),
              (std::vector<std::string>{"O_TYPO", "also-missing"}));
    const auto targets = builder.build();
    ASSERT_EQ(targets.size(), 2u);
    // Matched adjustments still land; unmatched ones change nothing.
    EXPECT_DOUBLE_EQ(targets[0], 10.0);   // O_RDONLY (canonical order)
    EXPECT_DOUBLE_EQ(targets[1], 100.0);  // O_SYNC
}

TEST(TargetBuilder, NoUnknownLabelsWhenEveryAdjustmentMatches) {
    stats::PartitionHistogram h;
    h.add("x", 1);
    TargetBuilder builder(h, 1.0);
    builder.boost("x", 3.0);
    EXPECT_TRUE(builder.unknown_labels().empty());
}

TEST(Gap, IdFormat) {
    Gap in;
    in.kind = Gap::Kind::Input;
    in.base = "open";
    in.arg = "flags";
    in.partition = "O_SYNC";
    EXPECT_EQ(in.id(), "open.flags:O_SYNC");
    Gap out;
    out.kind = Gap::Kind::Output;
    out.base = "write";
    out.partition = "ENOSPC";
    EXPECT_EQ(out.id(), "write:ENOSPC");
}

}  // namespace
}  // namespace iocov::core
