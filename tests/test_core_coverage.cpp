// Analyzer + coverage report + TCD + untested reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "core/coverage.hpp"
#include "core/tcd.hpp"
#include "core/untested.hpp"

namespace iocov::core {
namespace {

using trace::ArgValue;
using trace::TraceEvent;

TraceEvent open_event(std::uint32_t flags, std::int64_t ret,
                      const char* variant = "open") {
    TraceEvent ev;
    ev.syscall = variant;
    ev.args = {{"pathname", ArgValue{std::string("/mnt/test/f")}},
               {"flags", ArgValue{std::uint64_t{flags}}},
               {"mode", ArgValue{std::uint64_t{0644}}}};
    ev.ret = ret;
    return ev;
}

TraceEvent write_event(std::uint64_t count, std::int64_t ret,
                       const char* variant = "write") {
    TraceEvent ev;
    ev.syscall = variant;
    ev.args = {{"fd", ArgValue{std::int64_t{3}}},
               {"count", ArgValue{count}}};
    ev.ret = ret;
    return ev;
}

TEST(Analyzer, ReportDeclaresAllInputsAndOutputsUpFront) {
    Analyzer a;
    const auto& r = a.report();
    EXPECT_EQ(r.inputs.size(), 14u);
    EXPECT_EQ(r.outputs.size(), 11u);
    // Everything starts untested.
    for (const auto& in : r.inputs)
        EXPECT_EQ(in.hist.tested().size(), 0u) << in.base << "/" << in.key;
}

TEST(Analyzer, CountsOpenFlagsPerFlag) {
    Analyzer a;
    a.consume(open_event(abi::O_RDONLY, 3));
    a.consume(open_event(abi::O_WRONLY | abi::O_CREAT | abi::O_TRUNC, 4));
    a.consume(open_event(abi::O_RDONLY, -2));  // failures count as inputs
    const auto* flags = a.report().find_input("open", "flags");
    ASSERT_NE(flags, nullptr);
    EXPECT_EQ(flags->hist.count("O_RDONLY"), 2u);
    EXPECT_EQ(flags->hist.count("O_WRONLY"), 1u);
    EXPECT_EQ(flags->hist.count("O_CREAT"), 1u);
    EXPECT_EQ(flags->hist.count("O_EXCL"), 0u);
}

TEST(Analyzer, TracksComboCardinalityForTable1) {
    Analyzer a;
    a.consume(open_event(abi::O_RDONLY, 3));                      // 1 flag
    a.consume(open_event(abi::O_RDONLY | abi::O_CLOEXEC, 3));     // 2
    a.consume(open_event(abi::O_WRONLY | abi::O_CREAT |
                         abi::O_TRUNC, 3));                        // 3
    const auto* flags = a.report().find_input("open", "flags");
    EXPECT_EQ(flags->combo_cardinality.count("1"), 1u);
    EXPECT_EQ(flags->combo_cardinality.count("2"), 1u);
    EXPECT_EQ(flags->combo_cardinality.count("3"), 1u);
    // O_RDONLY-conditional rows.
    EXPECT_EQ(flags->combo_cardinality_rdonly.count("1"), 1u);
    EXPECT_EQ(flags->combo_cardinality_rdonly.count("2"), 1u);
    EXPECT_EQ(flags->combo_cardinality_rdonly.count("3"), 0u);
    // Pair extension.
    EXPECT_EQ(flags->pairs.count("O_CLOEXEC+O_RDONLY"), 1u);
    EXPECT_EQ(flags->pairs.count("O_CREAT+O_TRUNC"), 1u);
}

TEST(Analyzer, MergesVariantsIntoBaseSpaces) {
    Analyzer a;
    a.consume(write_event(100, 100, "write"));
    a.consume(write_event(100, 100, "pwrite64"));
    a.consume(write_event(100, 100, "writev"));
    const auto* count = a.report().find_input("write", "count");
    EXPECT_EQ(count->hist.count("2^6"), 3u);
    const auto* out = a.report().find_output("write");
    EXPECT_EQ(out->hist.count("OK:2^6"), 3u);
}

TEST(Analyzer, CreatContributesToOpenFlagCoverage) {
    Analyzer a;
    TraceEvent ev;
    ev.syscall = "creat";
    ev.args = {{"pathname", ArgValue{std::string("/mnt/test/f")}},
               {"mode", ArgValue{std::uint64_t{0644}}}};
    ev.ret = 3;
    a.consume(ev);
    const auto* flags = a.report().find_input("open", "flags");
    EXPECT_EQ(flags->hist.count("O_WRONLY"), 1u);
    EXPECT_EQ(flags->hist.count("O_CREAT"), 1u);
    EXPECT_EQ(flags->hist.count("O_TRUNC"), 1u);
    EXPECT_EQ(flags->combo_cardinality.count("3"), 1u);
}

TEST(Analyzer, OutputPartitionsSuccessAndErrno) {
    Analyzer a;
    a.consume(open_event(abi::O_RDONLY, 5));
    a.consume(open_event(abi::O_RDONLY, -2));
    a.consume(open_event(abi::O_RDONLY, -13));
    const auto* out = a.report().find_output("open");
    EXPECT_EQ(out->hist.count("OK"), 1u);
    EXPECT_EQ(out->hist.count("ENOENT"), 1u);
    EXPECT_EQ(out->hist.count("EACCES"), 1u);
    EXPECT_EQ(out->hist.count("ENOSPC"), 0u);
}

TEST(Analyzer, UntrackedSyscallsCountedButNotPartitioned) {
    Analyzer a;
    TraceEvent ev;
    ev.syscall = "rename";
    ev.ret = 0;
    a.consume(ev);
    EXPECT_EQ(a.report().events_seen, 1u);
    EXPECT_EQ(a.report().events_tracked, 0u);
}

TEST(Analyzer, LseekCategoricalAndNumeric) {
    Analyzer a;
    TraceEvent ev;
    ev.syscall = "lseek";
    ev.args = {{"fd", ArgValue{std::int64_t{3}}},
               {"offset", ArgValue{std::int64_t{-5}}},
               {"whence", ArgValue{std::int64_t{abi::SEEK_END_}}}};
    ev.ret = abi::fail(abi::Err::EINVAL_);
    a.consume(ev);
    EXPECT_EQ(a.report().find_input("lseek", "offset")->hist.count("<0"),
              1u);
    EXPECT_EQ(
        a.report().find_input("lseek", "whence")->hist.count("SEEK_END"),
        1u);
    EXPECT_EQ(a.report().find_output("lseek")->hist.count("EINVAL"), 1u);
}

TEST(CoverageReport, MergeAddsCounts) {
    Analyzer a, b;
    a.consume(open_event(abi::O_RDONLY, 3));
    b.consume(open_event(abi::O_RDONLY, 3));
    b.consume(open_event(abi::O_WRONLY, 3));
    auto ra = a.take_report();
    ra.merge(b.report());
    EXPECT_EQ(ra.find_input("open", "flags")->hist.count("O_RDONLY"), 2u);
    EXPECT_EQ(ra.find_input("open", "flags")->hist.count("O_WRONLY"), 1u);
    EXPECT_EQ(ra.events_tracked, 3u);
}

// ---- TCD -------------------------------------------------------------------

TEST(Tcd, ZeroWhenFrequenciesEqualTarget) {
    stats::PartitionHistogram h;
    h.add("a", 100);
    h.add("b", 100);
    EXPECT_NEAR(tcd_uniform(h, 100.0), 0.0, 1e-12);
}

TEST(Tcd, MatchesHandComputedValue) {
    stats::PartitionHistogram h;
    h.add("a", 1000);  // log10 = 3
    h.add("b", 10);    // log10 = 1
    // target 100 (log10 = 2): sqrt((1 + 1)/2) = 1.
    EXPECT_NEAR(tcd_uniform(h, 100.0), 1.0, 1e-12);
}

TEST(Tcd, UntestedPartitionContributesFullLogDistance) {
    auto h = stats::PartitionHistogram::with_partitions({"a", "b"});
    h.add("a", 1000);
    // b counts 0 -> log floored to 0; target 1000 -> distance 3.
    EXPECT_NEAR(tcd_uniform(h, 1000.0), 3.0 / std::sqrt(2.0), 1e-9);
}

TEST(Tcd, LogDomainDownplaysOverTesting) {
    stats::PartitionHistogram over;  // one partition 100x over target
    over.add("a", 10000);
    over.add("b", 100);
    stats::PartitionHistogram under;  // one partition 100x under target
    under.add("a", 1);
    under.add("b", 100);
    // Log-domain treats both deviations symmetrically per partition...
    EXPECT_NEAR(tcd_uniform(over, 100.0), tcd_uniform(under, 100.0), 1e-9);
    // ...but the linear metric explodes for the over-tester.
    EXPECT_GT(tcd_linear_uniform(over, 100.0),
              90 * tcd_linear_uniform(under, 100.0));
}

TEST(Tcd, PerPartitionTargetsViaBuilder) {
    stats::PartitionHistogram h;
    h.add("O_SYNC", 1000);
    h.add("O_RDONLY", 1000);
    const auto targets = TargetBuilder(h, 10.0).boost("O_SYNC", 100.0)
                             .build();
    ASSERT_EQ(targets.size(), 2u);
    // Dynamic labels sit in canonical (sorted) row order, so O_RDONLY
    // precedes O_SYNC regardless of add() order.
    EXPECT_DOUBLE_EQ(targets[0], 10.0);
    EXPECT_DOUBLE_EQ(targets[1], 1000.0);
    // With the boosted target, O_SYNC is exactly on target.
    EXPECT_LT(tcd(h, targets), tcd_uniform(h, 10.0));
}

TEST(Tcd, TargetBuilderSetOverridesBase) {
    stats::PartitionHistogram h;
    h.add("x", 5);
    const auto t = TargetBuilder(h, 7.0).set("x", 5.0).build();
    EXPECT_NEAR(tcd(h, t), 0.0, 1e-12);
}

// ---- untested reporting ------------------------------------------------------

TEST(Untested, FindsInputAndOutputGaps) {
    Analyzer a;
    a.consume(open_event(abi::O_RDONLY, 3));
    const auto gaps = find_untested(a.report());
    // O_LARGEFILE input gap exists.
    bool largefile = false, enospc_out = false;
    for (const auto& gap : gaps) {
        if (gap.base == "open" && gap.partition == "O_LARGEFILE" &&
            gap.kind == UntestedPartition::Kind::Input)
            largefile = true;
        if (gap.base == "open" && gap.partition == "ENOSPC" &&
            gap.kind == UntestedPartition::Kind::Output)
            enospc_out = true;
        EXPECT_FALSE(gap.suggestion.empty());
    }
    EXPECT_TRUE(largefile);
    EXPECT_TRUE(enospc_out);
}

TEST(Untested, UnderTestedThreshold) {
    Analyzer a;
    a.consume(open_event(abi::O_RDONLY, 3));
    for (int i = 0; i < 100; ++i)
        a.consume(open_event(abi::O_WRONLY, 3));
    const auto under = find_under_tested(a.report(), 10);
    bool rdonly_under = false, wronly_under = false;
    for (const auto& gap : under) {
        if (gap.partition == "O_RDONLY") rdonly_under = true;
        if (gap.partition == "O_WRONLY") wronly_under = true;
    }
    EXPECT_TRUE(rdonly_under);
    EXPECT_FALSE(wronly_under);
}

TEST(Untested, SummaryRowsCoverAllSpaces) {
    Analyzer a;
    const auto rows = summarize(a.report());
    EXPECT_EQ(rows.size(), 14u + 11u);
    for (const auto& row : rows) {
        EXPECT_GT(row.declared, 0u);
        EXPECT_EQ(row.tested, 0u);
        EXPECT_EQ(row.fraction, 0.0);
    }
}

}  // namespace
}  // namespace iocov::core
