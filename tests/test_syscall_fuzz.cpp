// Syscall-layer fuzzing: random syscalls with adversarial arguments
// must never corrupt state, and the resulting trace must satisfy the
// analyzer's conservation properties.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "core/coverage.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "testers/rng.hpp"
#include "trace/sink.hpp"
#include "trace/text_format.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::syscall {
namespace {

using namespace iocov::abi;  // NOLINT

class SyscallFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyscallFuzz, RandomSyscallsKeepStateConsistent) {
    vfs::FsConfig cfg;
    cfg.capacity_blocks = 1 << 14;
    cfg.max_inodes = 2048;
    vfs::FileSystem fs(cfg);
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    trace::TraceBuffer buffer;
    Kernel kernel(fs, &buffer);
    auto proc = kernel.make_process(1, vfs::Credentials::user(1000, 1000));
    auto root_proc = kernel.make_process(2, vfs::Credentials::root());

    testers::Rng rng(GetParam());

    // Interesting argument pools: valid paths, hostile paths, boundary
    // numbers.
    const std::vector<std::string> paths = {
        fx.scratch + "/a",
        fx.scratch + "/b",
        fx.scratch,
        fx.plain_file,
        fx.noperm_file,
        fx.loop_link,
        fx.dangling_link,
        fx.fifo,
        fx.busy_dev,
        fx.plain_file + "/under_file",
        fx.scratch + "/" + std::string(300, 'x'),
        "relative_name",
        ".",
        "..",
        "/",
        "",
    };
    const std::vector<std::int64_t> numbers = {
        0,    1,     -1,   4096, -4096, 65536, (1LL << 31) - 1,
        1LL << 32, -(1LL << 40), std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min() + 1,
    };

    std::vector<int> open_fds;
    std::int64_t opens_ok = 0, closes_ok = 0;

    auto pick_path = [&] {
        return paths[rng.below(paths.size())].c_str();
    };
    auto pick_fd = [&]() -> int {
        if (!open_fds.empty() && rng.chance(3, 4))
            return open_fds[rng.below(open_fds.size())];
        return static_cast<int>(rng.below(2000)) - 200;
    };
    auto pick_num = [&] { return numbers[rng.below(numbers.size())]; };

    for (int step = 0; step < 2000; ++step) {
        switch (rng.below(14)) {
            case 0: {
                const auto flags =
                    static_cast<std::uint32_t>(rng.next() & 0x03ffffff);
                const auto fd = proc.sys_open(pick_path(), flags,
                                              static_cast<mode_t_>(
                                                  rng.below(010000)));
                if (fd >= 0) {
                    ++opens_ok;
                    open_fds.push_back(static_cast<int>(fd));
                }
                break;
            }
            case 1: {
                const int fd = pick_fd();
                if (proc.sys_close(fd) == 0) {
                    ++closes_ok;
                    open_fds.erase(
                        std::remove(open_fds.begin(), open_fds.end(), fd),
                        open_fds.end());
                }
                break;
            }
            case 2:
                proc.sys_write(pick_fd(),
                               WriteSrc::pattern(
                                   rng.below(1 << 18),
                                   static_cast<std::byte>(rng.below(256))));
                break;
            case 3:
                proc.sys_read(pick_fd(),
                              ReadDst::discard(rng.below(1 << 18)));
                break;
            case 4:
                proc.sys_pwrite64(pick_fd(),
                                  WriteSrc::pattern(rng.below(8192),
                                                    std::byte{7}),
                                  pick_num());
                break;
            case 5:
                proc.sys_lseek(pick_fd(), pick_num(),
                               static_cast<int>(rng.below(8)) - 1);
                break;
            case 6:
                proc.sys_truncate(pick_path(), pick_num());
                break;
            case 7:
                proc.sys_mkdir(pick_path(),
                               static_cast<mode_t_>(rng.below(010000)));
                break;
            case 8:
                proc.sys_chmod(pick_path(),
                               static_cast<mode_t_>(rng.below(010000)));
                break;
            case 9:
                proc.sys_chdir(pick_path());
                break;
            case 10: {
                std::vector<std::byte> val(rng.below(300), std::byte{9});
                proc.sys_setxattr(pick_path(), "user.fuzz", val,
                                  static_cast<int>(rng.below(4)));
                break;
            }
            case 11:
                proc.sys_getxattr(pick_path(), "user.fuzz",
                                  rng.below(512));
                break;
            case 12:
                proc.sys_unlink(pick_path());
                break;
            default:
                root_proc.sys_rename(pick_path(), pick_path());
                break;
        }
    }

    // fd-table consistency: our local bookkeeping matches the process.
    EXPECT_EQ(proc.open_fd_count(), open_fds.size());
    EXPECT_EQ(static_cast<std::int64_t>(open_fds.size()),
              opens_ok - closes_ok);

    // Trace conservation: one event per syscall issued, sequence
    // strictly monotonic.
    for (std::size_t i = 1; i < buffer.events().size(); ++i)
        ASSERT_LT(buffer.events()[i - 1].seq, buffer.events()[i].seq);

    // Analyzer conservation: for each base syscall, output events equal
    // the number of tracked trace events of that base.
    core::Analyzer analyzer;
    analyzer.consume_all(buffer.events());
    std::map<std::string, std::uint64_t> per_base;
    for (const auto& ev : buffer.events())
        if (auto base = core::base_of_variant(ev.syscall))
            ++per_base[*base];
    for (const auto& out : analyzer.report().outputs)
        EXPECT_EQ(out.hist.total(), per_base[out.base]) << out.base;

    // Every declared-partition histogram only ever grew (no negative
    // counts possible by construction; sanity-check totals).
    std::uint64_t tracked = 0;
    for (const auto& [base, n] : per_base) tracked += n;
    EXPECT_EQ(analyzer.report().events_tracked, tracked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyscallFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(SyscallFuzzSmoke, TextRoundTripOfFuzzTraceIsLossless) {
    vfs::FileSystem fs;
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    trace::TraceBuffer buffer;
    Kernel kernel(fs, &buffer);
    auto proc = kernel.make_process(1, vfs::Credentials::user(1000, 1000));
    testers::Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        proc.sys_open((fx.scratch + "/f" + std::to_string(rng.below(8)))
                          .c_str(),
                      static_cast<std::uint32_t>(rng.next() & 0xffff),
                      0644);
        proc.sys_close(static_cast<int>(rng.below(16)));
    }
    std::stringstream text;
    for (const auto& ev : buffer.events())
        text << trace::format_event(ev) << '\n';
    std::size_t dropped = 0;
    const auto parsed = trace::parse_stream(text, &dropped);
    EXPECT_EQ(dropped, 0u);
    ASSERT_EQ(parsed.size(), buffer.size());
    for (std::size_t i = 0; i < parsed.size(); ++i)
        ASSERT_EQ(parsed[i], buffer.events()[i]) << i;
}

}  // namespace
}  // namespace iocov::syscall
