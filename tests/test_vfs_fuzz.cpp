// Invariant-based fuzzing of the FileSystem namespace: random operation
// sequences must preserve the global structural invariants a real fs
// maintains (link counts, parent pointers, block accounting).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testers/rng.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::vfs {
namespace {

class Invariants {
  public:
    static void check(FileSystem& fs) {
        std::map<InodeId, unsigned> name_refs;  // dirent references
        std::map<InodeId, unsigned> subdirs;
        std::set<InodeId> seen_dirs;

        // Walk the namespace from the root.
        walk(fs, kRootInode, name_refs, subdirs, seen_dirs);

        for (const auto& dir : seen_dirs) {
            const Inode* node = fs.find(dir);
            ASSERT_NE(node, nullptr);
            // Directory nlink = 2 ("." + parent entry) + one ".." per
            // subdirectory.  The root's parent entry is itself.
            EXPECT_EQ(node->nlink, 2 + subdirs[dir]) << "dir " << dir;
        }
        // Every reachable non-directory inode's nlink equals its number
        // of directory references (no fds held here).
        for (const auto& [ino, refs] : name_refs) {
            const Inode* node = fs.find(ino);
            ASSERT_NE(node, nullptr) << "dangling dirent to " << ino;
            if (!node->is_dir()) {
                EXPECT_EQ(node->nlink, refs) << "inode " << ino;
            }
        }
        // Block accounting: the sum over distinct inodes matches usage.
        std::uint64_t distinct_blocks = 0;
        std::set<InodeId> counted;
        for (const auto& [ino, refs] : name_refs) {
            if (!counted.insert(ino).second) continue;
            distinct_blocks +=
                fs.find(ino)->data.allocated_blocks(fs.config().block_size);
        }
        for (const auto& dir : seen_dirs) {
            if (!counted.insert(dir).second) continue;
            distinct_blocks +=
                fs.find(dir)->data.allocated_blocks(fs.config().block_size);
        }
        EXPECT_EQ(fs.usage().used_blocks, distinct_blocks);
    }

  private:
    static void walk(FileSystem& fs, InodeId dir,
                     std::map<InodeId, unsigned>& name_refs,
                     std::map<InodeId, unsigned>& subdirs,
                     std::set<InodeId>& seen_dirs) {
        if (!seen_dirs.insert(dir).second) return;
        const Inode* node = fs.find(dir);
        ASSERT_NE(node, nullptr);
        ASSERT_TRUE(node->is_dir());
        for (const auto& [name, child_id] : node->dirents) {
            ++name_refs[child_id];
            const Inode* child = fs.find(child_id);
            ASSERT_NE(child, nullptr) << "dangling entry " << name;
            if (child->is_dir()) {
                EXPECT_EQ(child->parent, dir) << "bad parent for " << name;
                ++subdirs[dir];
                walk(fs, child_id, name_refs, subdirs, seen_dirs);
            }
        }
    }
};

class VfsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VfsFuzz, RandomNamespaceOpsPreserveInvariants) {
    FsConfig cfg;
    cfg.capacity_blocks = 4096;
    cfg.max_inodes = 512;
    cfg.max_links = 12;
    FileSystem fs(cfg);
    const auto root = Credentials::root();
    testers::Rng rng(GetParam());

    // A pool of directories (by id) and names to act on.
    std::vector<InodeId> dirs{kRootInode};
    auto random_dir = [&] { return dirs[rng.below(dirs.size())]; };
    auto random_name = [&] {
        return "n" + std::to_string(rng.below(24));
    };

    for (int step = 0; step < 600; ++step) {
        const auto op = rng.below(10);
        const InodeId dir = random_dir();
        const std::string name = random_name();
        switch (op) {
            case 0:
            case 1: {
                (void)fs.create_file(dir, name, 0644, root);
                break;
            }
            case 2: {
                auto made = fs.make_dir(dir, name, 0755, root);
                if (made.ok()) dirs.push_back(made.value());
                break;
            }
            case 3: {
                (void)fs.make_symlink(dir, name, "/" + random_name(),
                                      root);
                break;
            }
            case 4: {  // hard link to some existing file
                auto target = fs.resolve("/" + random_name(), root);
                if (target.ok())
                    (void)fs.link(target.value(), dir, name, root);
                break;
            }
            case 5: {
                (void)fs.unlink(dir, name, root);
                break;
            }
            case 6: {
                auto st = fs.remove_dir(dir, name, root);
                if (st.ok()) {
                    // Forget removed directories (and anything under
                    // them would have blocked removal anyway).
                    const Inode* d = fs.find(dir);
                    (void)d;
                    dirs.erase(std::remove_if(
                                   dirs.begin(), dirs.end(),
                                   [&](InodeId id) {
                                       return fs.find(id) == nullptr;
                                   }),
                               dirs.end());
                }
                break;
            }
            case 7: {
                (void)fs.rename(dir, name, random_dir(), random_name(),
                                root);
                // rename can delete a victim dir; prune stale ids.
                dirs.erase(std::remove_if(dirs.begin(), dirs.end(),
                                          [&](InodeId id) {
                                              return fs.find(id) == nullptr;
                                          }),
                           dirs.end());
                break;
            }
            case 8: {  // write some data through the inode API
                auto target = fs.resolve("/" + random_name(), root);
                if (target.ok() && fs.find(target.value())->is_reg())
                    (void)fs.write_pattern(target.value(),
                                           rng.below(1 << 16),
                                           rng.below(1 << 14),
                                           std::byte{1});
                break;
            }
            default: {
                auto target = fs.resolve("/" + random_name(), root);
                if (target.ok() && fs.find(target.value())->is_reg())
                    (void)fs.truncate(target.value(), rng.below(1 << 15));
                break;
            }
        }
        if (step % 60 == 0) Invariants::check(fs);
        if (::testing::Test::HasFatalFailure()) return;
    }
    Invariants::check(fs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

}  // namespace
}  // namespace iocov::vfs
