// fsck invariant checker: clean file systems stay clean, and every
// violation class is detectable when the corresponding corruption is
// planted via find_mutable().
#include "vfs/fsck.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "testers/crash/effect_log.hpp"
#include "testers/crash/replay.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::vfs {
namespace {

using abi::Err;

std::vector<std::byte> bytes(std::size_t n) {
    return std::vector<std::byte>(n, std::byte{0x5a});
}

class FsckTest : public ::testing::Test {
  protected:
    Credentials root_ = Credentials::root();
    Credentials user_ = Credentials::user(1000, 1000);
};

TEST_F(FsckTest, FreshFileSystemIsClean) {
    FileSystem fs;
    const auto rep = fsck(fs);
    EXPECT_TRUE(rep.clean()) << rep.to_string();
    EXPECT_EQ(rep.inodes_checked, 1u);
}

TEST_F(FsckTest, PopulatedFileSystemIsClean) {
    FileSystem fs;
    const auto d = fs.make_dir(kRootInode, "d", 0755, root_);
    ASSERT_TRUE(d.ok());
    const auto sub = fs.make_dir(d.value(), "sub", 0755, root_);
    ASSERT_TRUE(sub.ok());
    const auto f = fs.create_file(d.value(), "f", 0644, root_);
    ASSERT_TRUE(f.ok());
    const auto data = bytes(10000);
    ASSERT_TRUE(fs.write(f.value(), 0, data).ok());
    ASSERT_TRUE(fs.link(f.value(), kRootInode, "hard", root_).ok());
    ASSERT_TRUE(fs.make_symlink(kRootInode, "s", "/d/f", root_).ok());
    ASSERT_TRUE(fs.rename(d.value(), "f", kRootInode, "moved", root_).ok());
    ASSERT_TRUE(fs.unlink(kRootInode, "hard", root_).ok());
    const auto rep = fsck(fs);
    EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST_F(FsckTest, QuotaAccountingSurvivesChownAndIsClean) {
    FsConfig cfg;
    cfg.quota_blocks_per_uid = 1000;
    FileSystem fs(cfg);
    ASSERT_TRUE(fs.chmod(kRootInode, 0777, root_).ok());
    const auto f = fs.create_file(kRootInode, "f", 0644, user_);
    ASSERT_TRUE(f.ok());
    const auto data = bytes(3 * cfg.block_size);
    ASSERT_TRUE(fs.write(f.value(), 0, data).ok());
    // chown must transfer the charged blocks to the new owner's ledger
    // entry, or the per-uid sums fsck recomputes will disagree.
    ASSERT_TRUE(fs.chown(f.value(), 2000, 2000, root_).ok());
    const auto rep = fsck(fs);
    EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST_F(FsckTest, DetectsDanglingDirent) {
    FileSystem fs;
    fs.find_mutable(kRootInode)->dirents["ghost"] = 9999;
    const auto rep = fsck(fs);
    EXPECT_EQ(rep.count(FsckCode::DanglingDirent), 1u) << rep.to_string();
}

TEST_F(FsckTest, DetectsLinkCountMismatch) {
    FileSystem fs;
    const auto f = fs.create_file(kRootInode, "f", 0644, root_);
    ASSERT_TRUE(f.ok());
    fs.find_mutable(f.value())->nlink = 5;
    const auto rep = fsck(fs);
    EXPECT_EQ(rep.count(FsckCode::LinkCountMismatch), 1u) << rep.to_string();
}

TEST_F(FsckTest, DetectsZeroLinkInode) {
    FileSystem fs;
    const auto f = fs.create_file(kRootInode, "f", 0644, root_);
    ASSERT_TRUE(f.ok());
    fs.find_mutable(f.value())->nlink = 0;
    const auto rep = fsck(fs);
    EXPECT_EQ(rep.count(FsckCode::ZeroLinkInode), 1u) << rep.to_string();
}

TEST_F(FsckTest, AnonymousInodeIsOrphanWithoutPinCleanWithPin) {
    FileSystem fs;
    const auto f = fs.create_anonymous(kRootInode, 0600, root_);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(fsck(fs).count(FsckCode::OrphanInode), 1u);
    FsckOptions opts;
    opts.pinned_inodes.push_back(f.value());
    const auto rep = fsck(fs, opts);
    EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST_F(FsckTest, DetectsStaleFdPin) {
    FileSystem fs;
    FsckOptions opts;
    opts.pinned_inodes.push_back(4242);  // never existed
    const auto rep = fsck(fs, opts);
    EXPECT_EQ(rep.count(FsckCode::StaleFdInode), 1u) << rep.to_string();
}

TEST_F(FsckTest, DetectsMultipleDirectoryParents) {
    FileSystem fs;
    const auto d = fs.make_dir(kRootInode, "d", 0755, root_);
    ASSERT_TRUE(d.ok());
    fs.find_mutable(kRootInode)->dirents["alias"] = d.value();
    const auto rep = fsck(fs);
    EXPECT_GE(rep.count(FsckCode::MultipleDirParents), 1u) << rep.to_string();
}

TEST_F(FsckTest, DetectsBadDotDot) {
    FileSystem fs;
    const auto a = fs.make_dir(kRootInode, "a", 0755, root_);
    const auto b = fs.make_dir(kRootInode, "b", 0755, root_);
    ASSERT_TRUE(a.ok() && b.ok());
    // a's ".." claims b, but b holds no entry for a.
    fs.find_mutable(a.value())->parent = b.value();
    const auto rep = fsck(fs);
    EXPECT_GE(rep.count(FsckCode::BadDotDot), 1u) << rep.to_string();
}

TEST_F(FsckTest, DetectsDirectoryCycle) {
    FileSystem fs;
    const auto a = fs.make_dir(kRootInode, "a", 0755, root_);
    ASSERT_TRUE(a.ok());
    const auto b = fs.make_dir(a.value(), "b", 0755, root_);
    ASSERT_TRUE(b.ok());
    // Close the loop a -> b -> a and detach it from the root: each
    // parent pointer names a live directory that really references the
    // child, so no BadDotDot fires — only the cycle check can see it.
    fs.find_mutable(b.value())->dirents["back"] = a.value();
    fs.find_mutable(a.value())->parent = b.value();
    fs.find_mutable(kRootInode)->dirents.erase("a");
    const auto rep = fsck(fs);
    EXPECT_EQ(rep.count(FsckCode::DirectoryCycle), 2u) << rep.to_string();
}

TEST_F(FsckTest, DetectsDataOnNonRegularFile) {
    FileSystem fs;
    const auto s = fs.make_symlink(kRootInode, "s", "/target", root_);
    ASSERT_TRUE(s.ok());
    const auto data = bytes(8);
    fs.find_mutable(s.value())->data.write(
        0, std::span<const std::byte>(data));
    const auto rep = fsck(fs);
    EXPECT_EQ(rep.count(FsckCode::DataOnNonFile), 1u) << rep.to_string();
}

TEST_F(FsckTest, SparseAndTruncatedFilesAreNotFlaggedBeyondEof) {
    // FileData itself maintains the extents-within-size invariant
    // (set_size clips straddling extents), so the AllocationBeyondEof
    // check must never false-positive on the shapes that get close to
    // the boundary: sparse tails, shrunk files, and partial last blocks.
    FileSystem fs;
    const auto f = fs.create_file(kRootInode, "f", 0644, root_);
    ASSERT_TRUE(f.ok());
    const auto data = bytes(4096 + 17);  // partial trailing block
    ASSERT_TRUE(fs.write(f.value(), 0, data).ok());
    ASSERT_TRUE(fs.truncate(f.value(), 1 << 20).ok());  // hole at the tail
    ASSERT_TRUE(fs.truncate(f.value(), 100).ok());      // clip mid-extent
    const auto rep = fsck(fs);
    EXPECT_EQ(rep.count(FsckCode::AllocationBeyondEof), 0u)
        << rep.to_string();
    EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST_F(FsckTest, DetectsBlockSumMismatch) {
    FileSystem fs;
    const auto f = fs.create_file(kRootInode, "f", 0644, root_);
    ASSERT_TRUE(f.ok());
    // Bytes written behind the accounting layer's back: per-inode
    // allocations no longer sum to used_blocks().
    const auto data = bytes(8192);
    fs.find_mutable(f.value())->data.write(
        0, std::span<const std::byte>(data));
    const auto rep = fsck(fs);
    EXPECT_EQ(rep.count(FsckCode::BlockSumMismatch), 1u) << rep.to_string();
}

TEST_F(FsckTest, DetectsQuotaSumMismatch) {
    FsConfig cfg;
    cfg.quota_blocks_per_uid = 1000;
    FileSystem fs(cfg);
    ASSERT_TRUE(fs.chmod(kRootInode, 0777, root_).ok());
    const auto f = fs.create_file(kRootInode, "f", 0644, user_);
    ASSERT_TRUE(f.ok());
    const auto data = bytes(2 * cfg.block_size);
    ASSERT_TRUE(fs.write(f.value(), 0, data).ok());
    ASSERT_TRUE(fsck(fs).clean());
    // Flip the owner without going through chown: the ledger still
    // charges uid 1000 while the recomputed sums charge uid 2000.
    fs.find_mutable(f.value())->uid = 2000;
    const auto rep = fsck(fs);
    EXPECT_GE(rep.count(FsckCode::QuotaSumMismatch), 1u) << rep.to_string();
}

TEST_F(FsckTest, CrashRecoveredTmpfileIsExcusedOnlyByItsFdPin) {
    // Crash-recovered states carry live O_TMPFILE inodes: the replayer
    // reports them as pinned, and fsck must excuse exactly those — the
    // same inode without its pin is still an orphan.
    using testers::crash::CrashPoint;
    using testers::crash::CrashReplayer;
    using testers::crash::EffectLog;

    const FsConfig cfg{};
    EffectLog log;
    {
        FileSystem fs(cfg);
        fs.set_effect_observer(&log);
        const auto anon = fs.create_anonymous(kRootInode, 0600, root_);
        ASSERT_TRUE(anon.ok());
        const auto data = bytes(4096);
        ASSERT_TRUE(fs.write(anon.value(), 0, data).ok());
        fs.sync_inode(anon.value(), BarrierKind::Fsync);
    }
    CrashReplayer replayer(log, cfg, [](FileSystem&) {});
    CrashPoint full;
    full.prefix = log.effects().size();
    const auto rec = replayer.replay(full);
    ASSERT_EQ(rec.pinned.size(), 1u);

    EXPECT_GE(fsck(*rec.fs).count(FsckCode::OrphanInode), 1u);
    FsckOptions opts;
    opts.pinned_inodes = rec.pinned;
    const auto rep = fsck(*rec.fs, opts);
    EXPECT_TRUE(rep.clean()) << rep.to_string();
}

TEST_F(FsckTest, QuotaLedgersConsistentInEveryCrashRecoveredState) {
    // Replayed effects re-run the quota accounting (create as the
    // recorded owner, chown transfers ledgers); every enumerated crash
    // state must satisfy the per-uid sums, or recovery itself would be
    // manufacturing quota corruption.
    using testers::crash::CrashPlanConfig;
    using testers::crash::CrashReplayer;
    using testers::crash::EffectLog;

    FsConfig cfg;
    cfg.quota_blocks_per_uid = 1000;
    const auto base = [](FileSystem& fs) {
        ASSERT_TRUE(fs.chmod(kRootInode, 0777, Credentials::root()).ok());
    };
    EffectLog log;
    {
        FileSystem fs(cfg);
        base(fs);
        fs.set_effect_observer(&log);
        const auto f = fs.create_file(kRootInode, "f", 0644, user_);
        ASSERT_TRUE(f.ok());
        const auto data = bytes(3 * cfg.block_size);
        ASSERT_TRUE(fs.write(f.value(), 0, data).ok());
        fs.sync_inode(f.value(), BarrierKind::Fsync);
        ASSERT_TRUE(fs.chown(f.value(), 2000, 2000, root_).ok());
        const auto more = bytes(2 * cfg.block_size);
        ASSERT_TRUE(fs.write(f.value(), 4 * cfg.block_size, more).ok());
        fs.sync_all();
    }
    CrashReplayer replayer(log, cfg, base);
    for (const auto& point : replayer.plan(CrashPlanConfig{})) {
        const auto rec = replayer.replay(point);
        const auto rep = fsck(*rec.fs);
        EXPECT_EQ(rep.count(FsckCode::QuotaSumMismatch), 0u)
            << point.id() << ": " << rep.to_string();
        EXPECT_EQ(rep.count(FsckCode::BlockSumMismatch), 0u)
            << point.id() << ": " << rep.to_string();
    }
}

}  // namespace
}  // namespace iocov::vfs
