// Directory ingestion (IOCov::consume_binary_dir): bit-identity with
// per-file sequential ingestion + merge, non-IOCT rejection
// diagnostics, damaged-file tolerance and --max-errors accounting,
// empty and missing directories, and thread-count independence.
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/iocov.hpp"
#include "trace/binary_format.hpp"

namespace iocov::core {
namespace {

namespace fs = std::filesystem;

using trace::ArgValue;
using trace::TraceEvent;

/// A self-contained per-file workload: every fd is opened inside the
/// file that uses it, so per-file filter state (what consume_binary_dir
/// guarantees) and carried-over filter state (what a sequential IOCov
/// would have) agree bit-for-bit.
std::vector<TraceEvent> file_workload(std::uint32_t pid, int rounds) {
    std::vector<TraceEvent> events;
    std::uint64_t seq = 1;
    auto push = [&](const char* syscall, std::vector<trace::Arg> args,
                    std::int64_t ret) {
        TraceEvent ev;
        ev.seq = seq++;
        ev.pid = pid;
        ev.tid = pid;
        ev.syscall = syscall;
        ev.args = std::move(args);
        ev.ret = ret;
        events.push_back(std::move(ev));
    };
    for (int r = 0; r < rounds; ++r) {
        const std::string path =
            "/mnt/test/f" + std::to_string(pid) + "_" + std::to_string(r);
        push("openat",
             {{"dfd", ArgValue{std::int64_t{-100}}},
              {"pathname", ArgValue{path}},
              {"flags", ArgValue{std::uint64_t{r % 2 ? 0101u : 0102u}}},
              {"mode", ArgValue{std::uint64_t{0644}}}},
             3);
        push("write",
             {{"fd", ArgValue{std::int64_t{3}}},
              {"count", ArgValue{std::uint64_t{1} << (r % 14)}}},
             static_cast<std::int64_t>(std::uint64_t{1} << (r % 14)));
        push("close", {{"fd", ArgValue{std::int64_t{3}}}}, 0);
        // Noise outside the mount point: must be filtered out.
        push("openat",
             {{"dfd", ArgValue{std::int64_t{-100}}},
              {"pathname", ArgValue{std::string("/etc/passwd")}},
              {"flags", ArgValue{std::uint64_t{0}}},
              {"mode", ArgValue{std::uint64_t{0}}}},
             4);
    }
    return events;
}

/// Creates a unique temp directory populated with `traces` (written in
/// the given name order).
class TraceDir {
  public:
    explicit TraceDir(
        const std::vector<std::pair<std::string, std::string>>& files) {
        // ctest runs each test in its own process, often concurrently:
        // the name must be unique per process, not just per test.
        dir_ = fs::temp_directory_path() /
               ("iocov_dir_ingest_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        fs::create_directories(dir_);
        for (const auto& [name, bytes] : files) {
            std::ofstream out(dir_ / name, std::ios::binary);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
    }
    ~TraceDir() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path() const { return dir_.string(); }

  private:
    static inline int counter_ = 0;
    fs::path dir_;
};

trace::FilterConfig config() {
    return trace::FilterConfig::mount_point("/mnt/test");
}

TEST(DirIngest, MatchesPerFileSequentialMerge) {
    const auto a = trace::encode_trace(file_workload(11, 40));
    const auto b = trace::encode_trace(file_workload(12, 25));
    const auto c = trace::encode_trace(file_workload(13, 10));
    TraceDir dir({{"a.ioct", a}, {"b.ioct", b}, {"c.ioct", c}});

    // Reference: one fresh IOCov per file, reports merged in name order.
    CoverageReport expected;
    std::uint64_t expected_filtered = 0;
    for (const auto* data : {&a, &b, &c}) {
        IOCov one(config());
        EXPECT_EQ(one.consume_binary(*data), 0u);
        expected.merge(one.report());
        expected_filtered += one.events_filtered_out();
    }

    IOCov iocov(config());
    const auto result = iocov.consume_binary_dir(dir.path(), 1);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->files, 3u);
    EXPECT_EQ(result->rejected, 0u);
    EXPECT_EQ(result->dropped, 0u);
    EXPECT_EQ(result->bytes, a.size() + b.size() + c.size());
    EXPECT_EQ(iocov.report(), expected);
    EXPECT_EQ(iocov.events_filtered_out(), expected_filtered);
    EXPECT_GT(expected_filtered, 0u);  // the filter actually ran
}

TEST(DirIngest, ThreadCountDoesNotChangeTheResult) {
    std::vector<std::pair<std::string, std::string>> files;
    for (int i = 0; i < 8; ++i)
        files.emplace_back(
            "t" + std::to_string(i) + ".ioct",
            trace::encode_trace(file_workload(
                static_cast<std::uint32_t>(20 + i), 5 + 7 * i)));
    TraceDir dir(files);

    IOCov serial(config());
    ASSERT_TRUE(serial.consume_binary_dir(dir.path(), 1).has_value());

    for (const unsigned n : {2u, 4u, 0u}) {
        IOCov parallel(config());
        const auto result = parallel.consume_binary_dir(dir.path(), n);
        ASSERT_TRUE(result.has_value()) << n << " threads";
        EXPECT_EQ(result->files, files.size()) << n << " threads";
        EXPECT_EQ(parallel.report(), serial.report()) << n << " threads";
        EXPECT_EQ(parallel.events_filtered_out(),
                  serial.events_filtered_out())
            << n << " threads";
    }
}

TEST(DirIngest, RejectsNonIoctFilesWithClearDiagnostic) {
    const auto good = trace::encode_trace(file_workload(31, 10));
    TraceDir dir({{"trace.ioct", good},
                  {"README.md", "this directory holds traces\n"},
                  {"sums.sha256", "abc123\n"}});

    IOCov iocov(config());
    const auto result = iocov.consume_binary_dir(dir.path(), 1);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->files, 1u);
    EXPECT_EQ(result->rejected, 2u);
    EXPECT_EQ(result->bytes, good.size());

    // Rejections are diagnosed (and thus feed --max-errors / --strict).
    EXPECT_EQ(iocov.diagnostics().total(), 2u);
    ASSERT_EQ(iocov.diagnostics().entries().size(), 2u);
    EXPECT_EQ(iocov.diagnostics().entries()[0].reason,
              "README.md: not an IOCT file (bad magic/version)");
    EXPECT_EQ(iocov.diagnostics().entries()[1].reason,
              "sums.sha256: not an IOCT file (bad magic/version)");

    IOCov reference(config());
    reference.consume_binary(good);
    EXPECT_EQ(iocov.report(), reference.report());
}

TEST(DirIngest, DamagedFileIsDiagnosedAndTheRestStillAnalyzes) {
    const auto clean = trace::encode_trace(file_workload(41, 20));
    auto damaged = trace::encode_trace(file_workload(42, 20));
    damaged.resize(damaged.size() - 7);  // torn mid-record

    // Per-file expectations from single-file ingestion.
    IOCov clean_ref(config()), damaged_ref(config());
    const auto clean_dropped = clean_ref.consume_binary(clean);
    const auto damaged_dropped = damaged_ref.consume_binary(damaged);
    EXPECT_GT(damaged_dropped, 0u);

    TraceDir dir({{"clean.ioct", clean}, {"damaged.ioct", damaged}});
    IOCov iocov(config());
    const auto result = iocov.consume_binary_dir(dir.path(), 2);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->files, 2u);
    EXPECT_EQ(result->rejected, 0u);
    EXPECT_EQ(result->dropped, clean_dropped + damaged_dropped);
    EXPECT_EQ(iocov.diagnostics().total(),
              clean_dropped + damaged_dropped);

    CoverageReport expected = clean_ref.report();
    expected.merge(damaged_ref.report());
    EXPECT_EQ(iocov.report(), expected);

    // Diagnostics are re-keyed by file name.
    ASSERT_FALSE(iocov.diagnostics().entries().empty());
    for (const auto& d : iocov.diagnostics().entries())
        EXPECT_EQ(d.reason.rfind("damaged.ioct: ", 0), 0u) << d.reason;
}

TEST(DirIngest, EmptyDirectoryAnalyzesAsEmpty) {
    TraceDir dir({});
    IOCov iocov(config());
    const auto result = iocov.consume_binary_dir(dir.path(), 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->files, 0u);
    EXPECT_EQ(result->rejected, 0u);
    EXPECT_EQ(result->dropped, 0u);
    EXPECT_EQ(result->bytes, 0u);
    EXPECT_EQ(iocov.report(), IOCov(config()).report());
}

TEST(DirIngest, MissingDirectoryReturnsNullopt) {
    IOCov iocov(config());
    EXPECT_FALSE(iocov.consume_binary_dir("/nonexistent/iocov_dir", 1)
                     .has_value());
}

TEST(DirIngest, IngestStatsAccumulate) {
    const auto a = trace::encode_trace(file_workload(51, 30));
    const auto b = trace::encode_trace(file_workload(52, 30));
    TraceDir dir({{"a.ioct", a}, {"b.ioct", b}});
    IOCov iocov(config());
    ASSERT_TRUE(iocov.consume_binary_dir(dir.path(), 2).has_value());
    const auto& stats = iocov.ingest_stats();
    EXPECT_EQ(stats.files, 2u);
    EXPECT_EQ(stats.bytes, a.size() + b.size());
    EXPECT_EQ(stats.events, 2u * 30u * 4u);
    EXPECT_GE(stats.threads, 2u);
    EXPECT_GT(stats.seconds, 0.0);
}

}  // namespace
}  // namespace iocov::core
