// Report determinism: campaign and guide summaries must be pure
// functions of (config, seed), and the fleet-level merge/trend JSON a
// pure function of the snapshot set — byte-identical across reruns and
// thread counts.  The campaign's new-output-partition list historically
// leaned on registry iteration order, which is only incidentally stable
// — it is now canonicalized (lexicographic), and these golden-shape
// tests lock the behavior down.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/iocov.hpp"
#include "core/snapshot.hpp"
#include "report/trend.hpp"
#include "syscall/kernel.hpp"
#include "testers/campaign.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "testers/guided/loop.hpp"
#include "trace/binary_format.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::testers {
namespace {

CampaignConfig small_campaign() {
    CampaignConfig cfg;
    cfg.suite = "crashmonkey";
    cfg.scale = 0.002;
    cfg.chaos_runs = 1;
    cfg.max_runs = 6;
    return cfg;
}

TEST(GoldenReports, CampaignSummaryIsIdenticalAcrossReruns) {
    const auto a = run_campaign(small_campaign());
    const auto b = run_campaign(small_campaign());
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.new_output_partitions, b.new_output_partitions);
    EXPECT_TRUE(a.aggregate == b.aggregate);
}

TEST(GoldenReports, CampaignNewPartitionsAreCanonicallySorted) {
    const auto result = run_campaign(small_campaign());
    ASSERT_FALSE(result.new_output_partitions.empty());
    EXPECT_TRUE(std::is_sorted(result.new_output_partitions.begin(),
                               result.new_output_partitions.end()));
    // Each entry is "base:ERRNO".
    for (const auto& p : result.new_output_partitions)
        EXPECT_NE(p.find(':'), std::string::npos) << p;
}

TEST(GoldenReports, GuideSummaryAndTableAreIdenticalAcrossReruns) {
    guided::GuideConfig cfg;
    cfg.suite = "crashmonkey";
    cfg.scale = 0.002;
    cfg.max_rounds = 1;
    cfg.call_budget = 50;
    const auto a = guided::run_guide(cfg);
    const auto b = guided::run_guide(cfg);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.table(), b.table());
    EXPECT_TRUE(a.final_report == b.final_report);
}

// ---- fleet merge / trend JSON ----------------------------------------------

/// Six labeled, timestamped snapshots from three suites x two seeds.
std::vector<core::NamedSnapshot> fleet_snapshots() {
    std::vector<core::NamedSnapshot> out;
    int i = 0;
    for (const char* suite : {"crashmonkey", "xfstests", "ltp"}) {
        for (const std::uint64_t seed : {1u, 2u}) {
            vfs::FileSystem fs(recommended_fs_config());
            auto fx = prepare_environment(fs, "/mnt/test");
            trace::TraceBuffer buffer;
            syscall::Kernel kernel(fs, &buffer);
            if (!std::strcmp(suite, "crashmonkey"))
                run_crashmonkey(kernel, fx, 0.01, seed);
            else if (!std::strcmp(suite, "ltp"))
                run_ltp(kernel, fx, 0.01, seed);
            else
                run_xfstests(kernel, fx, 0.01, seed);
            core::IOCov iocov(
                trace::FilterConfig::mount_point("/mnt/test"));
            iocov.consume_binary(
                trace::encode_trace(buffer.take_events()));
            auto snap = iocov.snapshot();
            snap.ingest.seconds = 0;  // telemetry, not golden state
            snap.label = suite;
            snap.timestamp = 3600u * static_cast<std::uint64_t>(1 + i);
            out.push_back({"s" + std::to_string(i) + ".iocs",
                           std::move(snap)});
            ++i;
        }
    }
    return out;
}

TEST(GoldenReports, MergeSummaryJsonIsByteIdenticalAcrossThreadCounts) {
    const auto snaps = fleet_snapshots();
    core::SnapshotDirLoad shape;
    shape.snapshots.resize(snaps.size());
    std::string first;
    for (const unsigned threads : {1u, 2u, 8u}) {
        const auto merged = core::merge_snapshots(snaps, threads);
        const auto json = core::merge_summary_json(shape, merged);
        if (first.empty()) first = json;
        EXPECT_EQ(json, first) << threads << " threads";
    }
    // Shape checks so the golden bytes stay meaningful.
    EXPECT_NE(first.find("\"snapshots\": 6"), std::string::npos);
    EXPECT_NE(first.find("\"space\": \"open.flags\""), std::string::npos);
}

TEST(GoldenReports, TrendJsonIsByteIdenticalAcrossRerunsAndThreads) {
    const auto snaps = fleet_snapshots();
    report::TrendOptions by_label;
    by_label.by_label = true;
    report::TrendOptions windowed;
    windowed.window_seconds = 7200;

    const auto label_ref = report::trend_json(snaps, by_label, 1);
    const auto window_ref = report::trend_json(snaps, windowed, 1);
    for (const unsigned threads : {2u, 8u}) {
        EXPECT_EQ(report::trend_json(snaps, by_label, threads), label_ref);
        EXPECT_EQ(report::trend_json(snaps, windowed, threads), window_ref);
    }
    // Rerun from scratch: the whole pipeline is a pure function.
    EXPECT_EQ(report::trend_json(fleet_snapshots(), by_label, 4),
              label_ref);

    // Label slices sort lexicographically.
    const auto cm = label_ref.find("\"crashmonkey\"");
    const auto ltp = label_ref.find("\"ltp\"");
    const auto xfs = label_ref.find("\"xfstests\"");
    ASSERT_NE(cm, std::string::npos);
    ASSERT_NE(ltp, std::string::npos);
    ASSERT_NE(xfs, std::string::npos);
    EXPECT_LT(cm, ltp);
    EXPECT_LT(ltp, xfs);
    // Window slices: six snapshots at 3600s spacing into 7200s buckets
    // gives multiple keyed slices with TCD series fields.
    EXPECT_NE(window_ref.find("\"aggregate_tcd\""), std::string::npos);
    EXPECT_NE(window_ref.find("\"input_gaps\""), std::string::npos);
}

}  // namespace
}  // namespace iocov::testers
