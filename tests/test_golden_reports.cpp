// Report determinism: campaign and guide summaries must be pure
// functions of (config, seed).  The campaign's new-output-partition
// list historically leaned on registry iteration order, which is only
// incidentally stable — it is now canonicalized (lexicographic), and
// these golden-shape tests lock the behavior down.
#include <gtest/gtest.h>

#include <algorithm>

#include "testers/campaign.hpp"
#include "testers/guided/loop.hpp"

namespace iocov::testers {
namespace {

CampaignConfig small_campaign() {
    CampaignConfig cfg;
    cfg.suite = "crashmonkey";
    cfg.scale = 0.002;
    cfg.chaos_runs = 1;
    cfg.max_runs = 6;
    return cfg;
}

TEST(GoldenReports, CampaignSummaryIsIdenticalAcrossReruns) {
    const auto a = run_campaign(small_campaign());
    const auto b = run_campaign(small_campaign());
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.new_output_partitions, b.new_output_partitions);
    EXPECT_TRUE(a.aggregate == b.aggregate);
}

TEST(GoldenReports, CampaignNewPartitionsAreCanonicallySorted) {
    const auto result = run_campaign(small_campaign());
    ASSERT_FALSE(result.new_output_partitions.empty());
    EXPECT_TRUE(std::is_sorted(result.new_output_partitions.begin(),
                               result.new_output_partitions.end()));
    // Each entry is "base:ERRNO".
    for (const auto& p : result.new_output_partitions)
        EXPECT_NE(p.find(':'), std::string::npos) << p;
}

TEST(GoldenReports, GuideSummaryAndTableAreIdenticalAcrossReruns) {
    guided::GuideConfig cfg;
    cfg.suite = "crashmonkey";
    cfg.scale = 0.002;
    cfg.max_rounds = 1;
    cfg.call_budget = 50;
    const auto a = guided::run_guide(cfg);
    const auto b = guided::run_guide(cfg);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.table(), b.table());
    EXPECT_TRUE(a.final_report == b.final_report);
}

}  // namespace
}  // namespace iocov::testers
