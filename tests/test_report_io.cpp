// CoverageReport save/load round-trip and the diff engine.
#include <gtest/gtest.h>

#include <sstream>

#include "abi/fcntl.hpp"
#include "core/diff.hpp"
#include "core/report_io.hpp"

namespace iocov::core {
namespace {

using trace::ArgValue;
using trace::TraceEvent;

TraceEvent open_event(std::uint32_t flags, std::int64_t ret) {
    TraceEvent ev;
    ev.syscall = "open";
    ev.args = {{"pathname", ArgValue{std::string("/mnt/test/f")}},
               {"flags", ArgValue{std::uint64_t{flags}}},
               {"mode", ArgValue{std::uint64_t{0644}}}};
    ev.ret = ret;
    return ev;
}

CoverageReport sample_report() {
    Analyzer a;
    a.consume(open_event(abi::O_RDONLY, 3));
    a.consume(open_event(abi::O_RDONLY | abi::O_CLOEXEC, 4));
    a.consume(open_event(abi::O_WRONLY | abi::O_CREAT | abi::O_TRUNC, -2));
    TraceEvent w;
    w.syscall = "pwrite64";
    w.args = {{"fd", ArgValue{std::int64_t{3}}},
              {"count", ArgValue{std::uint64_t{4096}}},
              {"pos", ArgValue{std::int64_t{0}}}};
    w.ret = 4096;
    a.consume(w);
    return a.take_report();
}

TEST(ReportIo, RoundTripPreservesEverything) {
    const auto original = sample_report();
    std::stringstream ss;
    save_report(ss, original);
    const auto loaded = load_report(ss);
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(loaded->events_seen, original.events_seen);
    EXPECT_EQ(loaded->events_tracked, original.events_tracked);
    ASSERT_EQ(loaded->inputs.size(), original.inputs.size());
    for (std::size_t i = 0; i < original.inputs.size(); ++i) {
        const auto& a = original.inputs[i];
        const auto& b = loaded->inputs[i];
        EXPECT_EQ(a.base, b.base);
        EXPECT_EQ(a.key, b.key);
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_EQ(a.hist, b.hist) << a.base << "/" << a.key;
        EXPECT_EQ(a.combo_cardinality, b.combo_cardinality);
        EXPECT_EQ(a.combo_cardinality_rdonly, b.combo_cardinality_rdonly);
        EXPECT_EQ(a.pairs, b.pairs);
    }
    ASSERT_EQ(loaded->outputs.size(), original.outputs.size());
    for (std::size_t i = 0; i < original.outputs.size(); ++i) {
        EXPECT_EQ(loaded->outputs[i].hist, original.outputs[i].hist);
        EXPECT_EQ(loaded->outputs[i].success, original.outputs[i].success);
    }
}

TEST(ReportIo, UntestedPartitionsSurviveTheRoundTrip) {
    const auto original = sample_report();
    std::stringstream ss;
    save_report(ss, original);
    const auto loaded = load_report(ss);
    ASSERT_TRUE(loaded.has_value());
    // The O_LARGEFILE partition is declared-but-zero on both sides.
    const auto* flags = loaded->find_input("open", "flags");
    EXPECT_TRUE(flags->hist.has_partition("O_LARGEFILE"));
    EXPECT_EQ(flags->hist.count("O_LARGEFILE"), 0u);
    EXPECT_EQ(flags->hist.untested(),
              original.find_input("open", "flags")->hist.untested());
}

TEST(ReportIo, RejectsGarbage) {
    std::stringstream empty;
    EXPECT_FALSE(load_report(empty).has_value());
    std::stringstream wrong("not a report\nevents_seen 3\n");
    EXPECT_FALSE(load_report(wrong).has_value());
    std::stringstream bad_count(
        "# iocov-coverage v1\nevents_seen notanumber\n");
    EXPECT_FALSE(load_report(bad_count).has_value());
    std::stringstream orphan_row("# iocov-coverage v1\nO_RDONLY 5\n");
    EXPECT_FALSE(load_report(orphan_row).has_value());
}

TEST(Diff, IdenticalReportsHaveNoDeltas) {
    const auto r = sample_report();
    EXPECT_TRUE(diff_reports(r, r).empty());
    EXPECT_FALSE(has_coverage_regression(r, r));
}

TEST(Diff, DetectsLostAndGainedPartitions) {
    Analyzer before, after;
    before.consume(open_event(abi::O_RDONLY, 3));
    after.consume(open_event(abi::O_WRONLY, 3));
    const auto deltas = diff_reports(before.report(), after.report());
    bool lost_rdonly = false, gained_wronly = false;
    for (const auto& d : deltas) {
        if (d.partition == "O_RDONLY" &&
            d.kind == CoverageDelta::Kind::Lost)
            lost_rdonly = true;
        if (d.partition == "O_WRONLY" &&
            d.kind == CoverageDelta::Kind::Gained)
            gained_wronly = true;
    }
    EXPECT_TRUE(lost_rdonly);
    EXPECT_TRUE(gained_wronly);
    EXPECT_TRUE(has_coverage_regression(before.report(), after.report()));
    // Losses sort first.
    ASSERT_FALSE(deltas.empty());
    EXPECT_EQ(deltas.front().kind, CoverageDelta::Kind::Lost);
}

TEST(Diff, RatioThresholdSuppressesSmallMovements) {
    Analyzer before, after;
    for (int i = 0; i < 100; ++i)
        before.consume(open_event(abi::O_RDONLY, 3));
    for (int i = 0; i < 80; ++i)
        after.consume(open_event(abi::O_RDONLY, 3));
    // 20% drop, threshold 50%: no deltas for the flag partition.
    auto deltas = diff_reports(before.report(), after.report());
    for (const auto& d : deltas)
        EXPECT_NE(d.partition, "O_RDONLY") << delta_kind_name(d.kind);
    // Tighten the threshold and the decrease appears.
    deltas = diff_reports(before.report(), after.report(), {0.1});
    bool found = false;
    for (const auto& d : deltas)
        if (d.partition == "O_RDONLY" &&
            d.kind == CoverageDelta::Kind::Decreased)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Diff, OutputDeltasAreReportedToo) {
    Analyzer before, after;
    before.consume(open_event(abi::O_RDONLY, -2));  // ENOENT covered
    after.consume(open_event(abi::O_RDONLY, 3));    // only OK covered
    const auto deltas = diff_reports(before.report(), after.report());
    bool lost_enoent = false;
    for (const auto& d : deltas)
        if (!d.is_input && d.base == "open" && d.partition == "ENOENT" &&
            d.kind == CoverageDelta::Kind::Lost)
            lost_enoent = true;
    EXPECT_TRUE(lost_enoent);
}

}  // namespace
}  // namespace iocov::core
