// Bug corpus invariants, coverage tracker, and the Section 2 study's
// headline numbers.
#include <gtest/gtest.h>

#include <algorithm>

#include "bugstudy/bug.hpp"
#include "bugstudy/coverage_tracker.hpp"
#include "bugstudy/study.hpp"

namespace iocov::bugstudy {
namespace {

TEST(CoverageTracker, CountsProbeHits) {
    CoverageTracker t;
    EXPECT_FALSE(t.covered("a"));
    t.probe("a");
    t.probe("a");
    t.probe("b");
    EXPECT_EQ(t.hits("a"), 2u);
    EXPECT_EQ(t.hits("b"), 1u);
    EXPECT_EQ(t.distinct_sites(), 2u);
    t.reset();
    EXPECT_FALSE(t.covered("a"));
}

TEST(CoverageTracker, InjectCountsAsExecutionAndFiresArmedFaults) {
    CoverageTracker t;
    EXPECT_EQ(t.inject("site"), std::nullopt);
    EXPECT_TRUE(t.covered("site"));
    t.arm_fault("site", abi::Err::EIO_, 2);
    EXPECT_EQ(t.inject("site"), abi::Err::EIO_);
    EXPECT_EQ(t.inject("site"), abi::Err::EIO_);
    EXPECT_EQ(t.inject("site"), std::nullopt);  // exhausted
    t.arm_fault("site", abi::Err::ENOMEM_);
    t.disarm("site");
    EXPECT_EQ(t.inject("site"), std::nullopt);
}

TEST(BugCorpus, SeventyBugsFiftyOneExtFour) {
    const auto& bugs = bug_corpus();
    EXPECT_EQ(bugs.size(), 70u);
    int ext4 = 0, btrfs = 0;
    for (const auto& b : bugs) {
        if (b.fs == "ext4") ++ext4;
        else if (b.fs == "btrfs") ++btrfs;
    }
    EXPECT_EQ(ext4, 51);  // the paper's split
    EXPECT_EQ(btrfs, 19);
}

TEST(BugCorpus, ClassificationMatchesPaperTotals) {
    int input = 0, output = 0, either = 0, both = 0;
    for (const auto& b : bug_corpus()) {
        if (b.input_bug) ++input;
        if (b.output_bug) ++output;
        if (b.input_bug || b.output_bug) ++either;
        if (b.input_bug && b.output_bug) ++both;
    }
    EXPECT_EQ(input, 50);   // 71%
    EXPECT_EQ(output, 41);  // 59%
    EXPECT_EQ(either, 57);  // 81%
    EXPECT_EQ(both, 34);
}

TEST(BugCorpus, EveryBugIsWellFormed) {
    std::set<std::string> ids;
    for (const auto& b : bug_corpus()) {
        EXPECT_FALSE(b.id.empty());
        EXPECT_TRUE(ids.insert(b.id).second) << "duplicate id " << b.id;
        EXPECT_FALSE(b.description.empty());
        EXPECT_FALSE(b.function_site.empty());
        ASSERT_TRUE(static_cast<bool>(b.trigger)) << b.id;
    }
}

TEST(BugCorpus, Fig1BugIsPresentAndShapedRight) {
    const Bug* fig1 = nullptr;
    for (const auto& b : bug_corpus())
        if (b.id == "ext4-22-019") fig1 = &b;
    ASSERT_NE(fig1, nullptr);
    EXPECT_EQ(fig1->function_site, "ext4_xattr_ibody_set");
    EXPECT_TRUE(fig1->input_bug);
    EXPECT_TRUE(fig1->output_bug);
    // Its trigger fires exactly on the maximum-allowed setxattr size.
    trace::TraceEvent ev;
    ev.syscall = "setxattr";
    ev.args = {{"pathname", trace::ArgValue{std::string("/mnt/test/f")}},
               {"name", trace::ArgValue{std::string("user.a")}},
               {"size", trace::ArgValue{std::uint64_t{65536}}},
               {"flags", trace::ArgValue{std::int64_t{0}}}};
    ev.ret = 0;
    auto ce = core::canonicalize(ev);
    ASSERT_TRUE(ce.has_value());
    EXPECT_TRUE(fig1->trigger(*ce));
    ev.args[2].value = trace::ArgValue{std::uint64_t{65535}};
    EXPECT_FALSE(fig1->trigger(*core::canonicalize(ev)));
}

TEST(BugStudy, ReproducesThePaperHeadlineNumbers) {
    const auto r = run_bug_study({0.005, 42});
    EXPECT_EQ(r.total, 70);
    EXPECT_EQ(r.ext4, 51);
    EXPECT_EQ(r.btrfs, 19);
    // Covered-but-missed: 53% / 61% / 29%.
    EXPECT_EQ(r.line_cbm, 37);
    EXPECT_EQ(r.fn_cbm, 43);
    EXPECT_EQ(r.branch_cbm, 20);
    // Classification: 71% / 59% / 81%.
    EXPECT_EQ(r.input_bugs, 50);
    EXPECT_EQ(r.output_bugs, 41);
    EXPECT_EQ(r.either_bugs, 57);
    // 65% of line-covered-but-missed bugs are input-triggerable.
    EXPECT_EQ(r.cbm_input_triggerable, 24);
    EXPECT_EQ(r.detected, 18);
    EXPECT_EQ(r.outcomes.size(), 70u);
}

TEST(BugStudy, CoverageHierarchyIsConsistent) {
    // For undetected bugs: branch-covered implies line-covered implies
    // function-covered (coarser metrics cover at least as much).
    const auto r = run_bug_study({0.005, 42});
    for (const auto& o : r.outcomes) {
        if (o.branch_covered) {
            EXPECT_TRUE(o.line_covered) << o.bug->id;
        }
        if (o.line_covered) {
            EXPECT_TRUE(o.fn_covered) << o.bug->id;
        }
    }
}

TEST(BugStudy, SitePoolsBehaveAsDesignedPerCategory) {
    // The corpus assigns sites by category (see bugs.cpp): bugs 19-38
    // are fully covered, 39-55 line-covered but branch-uncovered, 56-61
    // function-covered only, 62-70 entirely uncovered.  Verify the
    // simulated suite actually produces those hit/unhit patterns.
    const auto r = run_bug_study({0.005, 42});
    auto seq_of = [](const std::string& id) {
        return std::stoi(id.substr(id.rfind('-') + 1));
    };
    for (const auto& o : r.outcomes) {
        const int seq = seq_of(o.bug->id);
        if (seq >= 19 && seq <= 38) {
            EXPECT_TRUE(o.fn_covered && o.line_covered && o.branch_covered)
                << o.bug->id;
            EXPECT_FALSE(o.detected) << o.bug->id;
        } else if (seq >= 39 && seq <= 55) {
            EXPECT_TRUE(o.fn_covered && o.line_covered) << o.bug->id;
            EXPECT_FALSE(o.branch_covered) << o.bug->id;
        } else if (seq >= 56 && seq <= 61) {
            EXPECT_TRUE(o.fn_covered) << o.bug->id;
            EXPECT_FALSE(o.line_covered) << o.bug->id;
        } else if (seq >= 62) {
            EXPECT_FALSE(o.fn_covered) << o.bug->id;
        } else {
            EXPECT_TRUE(o.detected) << o.bug->id;  // category A
        }
    }
}

TEST(BugStudy, EvaluateCorpusOnEmptyRunFindsNothing) {
    CoverageTracker empty;
    const auto r = evaluate_corpus(empty, {});
    EXPECT_EQ(r.detected, 0);
    EXPECT_EQ(r.line_cbm, 0);
    EXPECT_EQ(r.fn_cbm, 0);
    // Classification is intrinsic to the corpus, not the run.
    EXPECT_EQ(r.input_bugs, 50);
}

TEST(BugCorpus, DatasetExportCoversEveryBug) {
    const auto md = render_bug_dataset();
    // Header + separator + 70 rows.
    EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 72);
    for (const auto& b : bug_corpus())
        EXPECT_NE(md.find(b.id), std::string::npos) << b.id;
    // Every triggerable bug states its trigger; races say so.
    EXPECT_NE(md.find("XATTR_SIZE_MAX"), std::string::npos);
    EXPECT_NE(md.find("(race; no syscall-level trigger)"),
              std::string::npos);
}

TEST(BugCorpus, TriggerDescriptionsMatchTriggerability) {
    // A bug with an empty trigger description must have a never-firing
    // trigger; the study's detected set must all have descriptions.
    const auto r = run_bug_study({0.005, 42});
    for (const auto& o : r.outcomes) {
        if (o.detected) {
            EXPECT_FALSE(o.bug->trigger_description.empty()) << o.bug->id;
        }
    }
}

}  // namespace
}  // namespace iocov::bugstudy
