// Persistence-effect log + bounded crash replay.
//
// Units: the VFS write path emits one effect per durable mutation and
// one Barrier per fsync/fdatasync/sync/syncfs/O_SYNC write; epochs
// split at barriers.  Integration: replaying the full log in order
// reconstructs the live file system bit-for-bit (strict state diff).
// Properties (seeded fuzz): no replayed tail effect ever crosses a
// persistence barrier, and replay is bit-identical across reruns of
// the same seed.
#include "testers/crash/replay.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/diff.hpp"
#include "syscall/kernel.hpp"
#include "syscall/process.hpp"
#include "testers/crash/effect_log.hpp"
#include "testers/crash/snapshot.hpp"
#include "testers/crash/workloads.hpp"
#include "testers/generator.hpp"
#include "testers/rng.hpp"

namespace iocov::testers::crash {
namespace {

using vfs::BarrierKind;
using vfs::EffectOp;

/// Runs one baseline workload live, returning the log and keeping the
/// file system around for state comparison.
struct LiveResult {
    vfs::FileSystem fs{recommended_fs_config()};
    EffectLog log;
};

void run_workload_live(LiveResult& live, const CrashWorkload& wl) {
    crash_base_setup(live.fs);
    live.fs.set_effect_observer(&live.log);
    syscall::Kernel kernel(live.fs, nullptr);
    {
        syscall::Process proc =
            kernel.make_process(1, vfs::Credentials::root());
        wl.run(proc, crash_fixtures());
    }
    live.fs.set_effect_observer(nullptr);
}

const CrashWorkload& workload(const std::string& name) {
    for (const auto& wl : crashmonkey_baseline())
        if (wl.name == name) return wl;
    ADD_FAILURE() << "no workload " << name;
    return crashmonkey_baseline().front();
}

TEST(CrashReplay, EffectLogRecordsMutationsAndBarriers) {
    LiveResult live;
    run_workload_live(live, workload("create_fsync"));
    const auto& effects = live.log.effects();
    ASSERT_FALSE(effects.empty());
    // create + write + fsync(Barrier) + tail write, in issue order.
    std::vector<EffectOp> ops;
    for (const auto& e : effects) ops.push_back(e.op);
    EXPECT_EQ(ops[0], EffectOp::Create);
    EXPECT_EQ(ops[1], EffectOp::Write);
    EXPECT_EQ(ops[2], EffectOp::Barrier);
    EXPECT_EQ(effects[2].barrier, BarrierKind::Fsync);
    EXPECT_EQ(ops[3], EffectOp::Write);
    EXPECT_EQ(live.log.barrier_positions(), (std::vector<std::size_t>{2}));
}

// Regression: callers may pass name views that point INTO the dirent
// map (e.g. found by iterating dir->dirents); the removal paths erase
// that key before building the effect record, so the VFS must copy the
// name first.  Under ASan any backslide is a use-after-free.
TEST(CrashReplay, RemovalEffectsSurviveNamesAliasingTheDirentKey) {
    vfs::FileSystem fs{recommended_fs_config()};
    EffectLog log;
    fs.set_effect_observer(&log);
    const auto root = vfs::Credentials::root();
    const auto dir = fs.make_dir(vfs::kRootInode, "d", 0755, root).value();
    (void)fs.create_file(vfs::kRootInode, "victim", 0644, root).value();
    (void)fs.create_file(vfs::kRootInode, "moved", 0644, root).value();

    auto key_view = [&](vfs::InodeId parent, std::string_view want) {
        const auto& ents = fs.find(parent)->dirents;
        return std::string_view{ents.find(std::string(want))->first};
    };

    ASSERT_TRUE(fs.unlink(vfs::kRootInode,
                          key_view(vfs::kRootInode, "victim"), root).ok());
    ASSERT_TRUE(fs.rename(vfs::kRootInode,
                          key_view(vfs::kRootInode, "moved"),
                          vfs::kRootInode, "renamed", root).ok());
    ASSERT_TRUE(fs.remove_dir(vfs::kRootInode,
                              key_view(vfs::kRootInode, "d"), root).ok());

    const auto& effects = log.effects();
    ASSERT_EQ(effects.size(), 6u);  // mkdir + 2 creates + the 3 removals
    EXPECT_EQ(effects[3].op, EffectOp::Unlink);
    EXPECT_EQ(effects[3].name, "victim");
    EXPECT_EQ(effects[4].op, EffectOp::Rename);
    EXPECT_EQ(effects[4].name, "moved");
    EXPECT_EQ(effects[4].name2, "renamed");
    EXPECT_EQ(effects[5].op, EffectOp::Rmdir);
    EXPECT_EQ(effects[5].name, "d");
}

TEST(CrashReplay, OSyncWritesEmitPerWriteBarriers) {
    LiveResult live;
    run_workload_live(live, workload("osync_log"));
    // Every O_SYNC write is followed by its own OSync barrier.
    std::size_t osync_barriers = 0;
    for (const auto& e : live.log.effects())
        if (e.op == EffectOp::Barrier && e.barrier == BarrierKind::OSync)
            ++osync_barriers;
    EXPECT_EQ(osync_barriers, 3u);
}

TEST(CrashReplay, SyncIsGlobalFsyncIsScoped) {
    EXPECT_TRUE(vfs::barrier_is_global(BarrierKind::Sync));
    EXPECT_TRUE(vfs::barrier_is_global(BarrierKind::Syncfs));
    EXPECT_FALSE(vfs::barrier_is_global(BarrierKind::Fsync));
    EXPECT_FALSE(vfs::barrier_is_global(BarrierKind::Fdatasync));
    EXPECT_FALSE(vfs::barrier_is_global(BarrierKind::OSync));

    LiveResult live;
    run_workload_live(live, workload("mkdir_tree_sync"));
    bool saw_global = false;
    for (const auto& e : live.log.effects())
        if (e.op == EffectOp::Barrier && e.barrier == BarrierKind::Sync) {
            saw_global = true;
            EXPECT_EQ(e.ino, vfs::kInvalidInode);
        }
    EXPECT_TRUE(saw_global);
}

TEST(CrashReplay, EpochsSplitAtBarriers) {
    LiveResult live;
    run_workload_live(live, workload("truncate_fdatasync"));
    const auto epochs = live.log.epochs();
    ASSERT_GE(epochs.size(), 2u);
    for (std::size_t i = 0; i + 1 < epochs.size(); ++i) {
        EXPECT_TRUE(epochs[i].has_barrier);
        EXPECT_EQ(epochs[i].barrier, epochs[i].end);
        EXPECT_EQ(epochs[i + 1].begin, epochs[i].end + 1);
    }
    EXPECT_FALSE(epochs.back().has_barrier);  // open tail epoch
}

TEST(CrashReplay, FullInOrderReplayReconstructsLiveStateExactly) {
    for (const auto& wl : crashmonkey_baseline()) {
        LiveResult live;
        run_workload_live(live, wl);

        CrashReplayer replayer(live.log, recommended_fs_config(),
                               crash_base_setup);
        CrashPoint full;
        full.prefix = live.log.effects().size();
        full.tail = CrashPoint::Tail::None;
        const RecoveredState rec = replayer.replay(full);
        EXPECT_EQ(rec.dropped, 0u) << wl.name;

        const auto expected = snapshot_vfs(live.fs);
        const auto actual = snapshot_vfs(*rec.fs);
        const auto deltas =
            core::diff_states(expected, actual, {.allow_extra = false});
        EXPECT_TRUE(deltas.empty()) << wl.name << ": "
                                    << (deltas.empty()
                                            ? std::string{}
                                            : deltas.front().to_string());
    }
}

TEST(CrashReplay, PlanEnumeratesEveryEpochDeterministically) {
    LiveResult live;
    run_workload_live(live, workload("many_writes_fdatasync"));
    CrashReplayer replayer(live.log, recommended_fs_config(),
                           crash_base_setup);
    CrashPlanConfig cfg;
    cfg.seed = 7;
    const auto a = replayer.plan(cfg);
    const auto b = replayer.plan(cfg);
    ASSERT_EQ(a.size(), b.size());
    std::set<std::string> ids;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id(), b[i].id());
        ids.insert(a[i].id());
    }
    EXPECT_EQ(ids.size(), a.size());  // ids are unique
    // Barrier-state, in-order, reordered and torn tails all present.
    bool seq = false, shuf = false, torn = false;
    for (const auto& p : a) {
        seq = seq || p.tail == CrashPoint::Tail::InOrder;
        shuf = shuf || p.tail == CrashPoint::Tail::Reordered;
        torn = torn || p.tail == CrashPoint::Tail::Torn;
    }
    EXPECT_TRUE(seq && shuf && torn);
}

TEST(CrashReplay, MaxPointsSubsamplesKeepingEnds) {
    LiveResult live;
    run_workload_live(live, workload("many_writes_fdatasync"));
    CrashReplayer replayer(live.log, recommended_fs_config(),
                           crash_base_setup);
    CrashPlanConfig cfg;
    const auto all = replayer.plan(cfg);
    cfg.max_points = 5;
    const auto few = replayer.plan(cfg);
    ASSERT_LE(few.size(), 5u);
    EXPECT_EQ(few.front().id(), all.front().id());
    EXPECT_EQ(few.back().id(), all.back().id());
}

// ---- seeded fuzz properties -----------------------------------------

/// A small random VFS mutation sequence with interleaved barriers,
/// driven directly through the instrumented FileSystem API.
void random_workload(vfs::FileSystem& fs, Rng& rng) {
    const auto root = vfs::Credentials::root();
    std::vector<vfs::InodeId> files;
    std::vector<vfs::InodeId> dirs{vfs::kRootInode};
    for (int op = 0; op < 40; ++op) {
        switch (rng.below(8)) {
            case 0: {
                auto r = fs.create_file(
                    dirs[rng.below(dirs.size())],
                    "f" + std::to_string(op), 0644, root);
                if (r.ok()) files.push_back(r.value());
                break;
            }
            case 1: {
                auto r = fs.make_dir(dirs[rng.below(dirs.size())],
                                     "d" + std::to_string(op), 0755, root);
                if (r.ok()) dirs.push_back(r.value());
                break;
            }
            case 2:
                if (!files.empty())
                    (void)fs.write_pattern(
                        files[rng.below(files.size())],
                        rng.below(4096), 2 + rng.below(512),
                        std::byte(static_cast<unsigned char>(
                            rng.below(256))));
                break;
            case 3:
                if (!files.empty())
                    (void)fs.truncate(files[rng.below(files.size())],
                                      rng.below(2048));
                break;
            case 4:
                if (!files.empty())
                    (void)fs.chmod(files[rng.below(files.size())],
                                   0600 + rng.below(0200), root);
                break;
            case 5:
                if (!files.empty())
                    fs.sync_inode(files[rng.below(files.size())],
                                  BarrierKind::Fsync);
                break;
            case 6:
                fs.sync_all();
                break;
            case 7:
                if (!files.empty() && rng.chance(1, 2)) {
                    // Unlink through the parent that actually holds it.
                    const vfs::InodeId victim = files.back();
                    const vfs::Inode* node = fs.find(victim);
                    if (node && node->nlink > 0) {
                        for (const vfs::InodeId d : dirs) {
                            const vfs::Inode* dir = fs.find(d);
                            if (!dir) continue;
                            for (const auto& [name, child] : dir->dirents)
                                if (child == victim) {
                                    (void)fs.unlink(d, name, root);
                                    files.pop_back();
                                    goto done;
                                }
                        }
                    }
                }
            done:
                break;
        }
    }
}

TEST(CrashReplay, FuzzTailsNeverCrossBarriersAndReplayIsDeterministic) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        EffectLog log;
        const vfs::FsConfig cfg{};
        const BaseSetup base = [](vfs::FileSystem&) {};
        {
            vfs::FileSystem fs(cfg);
            fs.set_effect_observer(&log);
            Rng rng(seed);
            random_workload(fs, rng);
        }
        const auto& effects = log.effects();
        CrashReplayer replayer(log, cfg, base);
        CrashPlanConfig plan_cfg;
        plan_cfg.seed = seed;
        const auto points = replayer.plan(plan_cfg);
        for (const auto& point : points) {
            const RecoveredState rec = replayer.replay(point);
            // The crash epoch ends at the first barrier at/after prefix.
            std::size_t epoch_end = point.prefix;
            while (epoch_end < effects.size() &&
                   effects[epoch_end].op != EffectOp::Barrier)
                ++epoch_end;
            for (const std::size_t idx : rec.applied) {
                if (idx < point.prefix) continue;  // retired prefix
                EXPECT_LT(idx, epoch_end)
                    << point.id() << ": tail effect " << idx
                    << " crossed the barrier at " << epoch_end;
                EXPECT_NE(effects[idx].op, EffectOp::Barrier);
            }
            // Bit-identical rerun: same applied sequence, same state.
            const RecoveredState again = replayer.replay(point);
            EXPECT_EQ(rec.applied, again.applied) << point.id();
            EXPECT_TRUE(core::diff_states(snapshot_vfs(*rec.fs),
                                          snapshot_vfs(*again.fs),
                                          {.allow_extra = false})
                            .empty())
                << point.id();
        }
    }
}

}  // namespace
}  // namespace iocov::testers::crash
