// IOCS snapshot format: bit-identical round trips, torn-tail and
// corruption diagnostics, version skew, merge algebra (associativity /
// commutativity fuzz against single-pass ingest), the IOCov::merge /
// snapshot() public API, and the IngestStats accumulation contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/iocov.hpp"
#include "core/snapshot.hpp"
#include "stats/histogram.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/binary_format.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::core {
namespace {

trace::FilterConfig config() {
    return trace::FilterConfig::mount_point("/mnt/test");
}

/// Raw (unfiltered) simulator trace — the same generator the parallel
/// pipeline tests use, seeded per call so the fuzz rounds differ.
std::vector<trace::TraceEvent> generator_trace(double scale,
                                               std::uint64_t seed) {
    vfs::FileSystem fs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fs, "/mnt/test");
    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fs, &buffer);
    testers::run_xfstests(kernel, fx, scale, seed);
    return buffer.take_events();
}

/// A populated snapshot with both declared and dynamic histogram rows,
/// nonzero counters, and provenance set.
IOCovSnapshot sample_snapshot(std::uint64_t seed = 42) {
    IOCov iocov(config());
    iocov.consume_binary(trace::encode_trace(generator_trace(0.02, seed)));
    auto snap = iocov.snapshot();
    snap.label = "host-a/xfstests";
    snap.timestamp = 1754600000;
    return snap;
}

// ---- round trip ------------------------------------------------------------

TEST(Snapshot, RoundTripIsBitIdentical) {
    const auto snap = sample_snapshot();
    ASSERT_GT(snap.report.events_tracked, 0u);
    const auto bytes = encode_snapshot(snap);
    EXPECT_TRUE(is_iocs(bytes));
    EXPECT_EQ(iocs_version(bytes), kIocsVersion);

    SnapshotError err;
    const auto decoded = decode_snapshot(bytes, &err);
    ASSERT_TRUE(decoded.has_value()) << err.to_string();
    EXPECT_EQ(*decoded, snap);
    // Re-encoding the decoded value reproduces the input bytes exactly.
    EXPECT_EQ(encode_snapshot(*decoded), bytes);
}

TEST(Snapshot, RoundTripPreservesIngestStatsAndProvenance) {
    const auto snap = sample_snapshot();
    const auto decoded = decode_snapshot(encode_snapshot(snap));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->ingest, snap.ingest);
    EXPECT_EQ(decoded->ingest.seconds, snap.ingest.seconds);  // exact bits
    EXPECT_EQ(decoded->label, "host-a/xfstests");
    EXPECT_EQ(decoded->timestamp, 1754600000u);
    EXPECT_EQ(decoded->filtered_out, snap.filtered_out);
}

TEST(Snapshot, RoundTripPreservesDeclaredBoundaries) {
    const auto snap = sample_snapshot();
    const auto decoded = decode_snapshot(encode_snapshot(snap));
    ASSERT_TRUE(decoded.has_value());
    // The boundary is behavioral state: a loaded histogram must keep
    // inserting future dynamic labels where the original would.
    for (std::size_t i = 0; i < snap.report.inputs.size(); ++i) {
        auto a = snap.report.inputs[i].hist;
        auto b = decoded->report.inputs[i].hist;
        ASSERT_EQ(b.declared_count(), a.declared_count());
        a.add("zz-novel-partition");
        b.add("zz-novel-partition");
        EXPECT_EQ(a.rows(), b.rows());
    }
}

TEST(Snapshot, EmptySnapshotRoundTrips) {
    const IOCovSnapshot empty;
    const auto decoded = decode_snapshot(encode_snapshot(empty));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, empty);
}

// ---- histogram reconstruction validation -----------------------------------

TEST(Snapshot, FromRowsRejectsForgedState) {
    using stats::PartitionCount;
    using stats::PartitionHistogram;
    std::vector<PartitionCount> rows = {{"b", 1}, {"a", 2}, {"c", 3}};
    // declared=2: tail {"c"} sorted — valid.
    const auto h = PartitionHistogram::from_rows(rows, 2);
    EXPECT_EQ(h.rows(), rows);
    EXPECT_EQ(h.declared_count(), 2u);
    // declared beyond rows.
    EXPECT_THROW(PartitionHistogram::from_rows(rows, 4),
                 std::invalid_argument);
    // Unsorted dynamic tail ("b" < "a" fails with declared=0).
    EXPECT_THROW(PartitionHistogram::from_rows(rows, 0),
                 std::invalid_argument);
    // Duplicate label.
    EXPECT_THROW(PartitionHistogram::from_rows({{"a", 1}, {"a", 2}}, 2),
                 std::invalid_argument);
}

// ---- damage: torn tails, corruption, version skew --------------------------

TEST(Snapshot, EveryTruncationFailsStructurallyAndNeverLoads) {
    const auto bytes = encode_snapshot(sample_snapshot());
    // Every proper prefix must be rejected: a snapshot is state, not a
    // stream, so there is no "usable prefix" notion to fall back to.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        SnapshotError err;
        const auto decoded =
            decode_snapshot(std::string_view(bytes).substr(0, len), &err);
        ASSERT_FALSE(decoded.has_value()) << "prefix of " << len;
        if (len < kIocsHeaderSize) {
            EXPECT_EQ(err.kind, SnapshotError::Kind::NotIocs) << len;
        } else {
            // Mid-record cuts may surface as Torn (clean cut) or Corrupt
            // (the cut exposes a malformed partial payload); both are
            // structured failures, and the checksum guarantees no cut
            // ever decodes.
            EXPECT_TRUE(err.kind == SnapshotError::Kind::Torn ||
                        err.kind == SnapshotError::Kind::Corrupt)
                << "prefix of " << len;
            EXPECT_FALSE(err.to_string().empty());
        }
    }
}

TEST(Snapshot, BitFlipFailsTheChecksum) {
    const auto snap = sample_snapshot();
    auto bytes = encode_snapshot(snap);
    // Flip one payload byte mid-file; structure may still parse, but
    // the footer checksum must refuse it.
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
    SnapshotError err;
    EXPECT_FALSE(decode_snapshot(bytes, &err).has_value());
    EXPECT_EQ(err.kind, SnapshotError::Kind::Corrupt);
}

TEST(Snapshot, VersionSkewIsAStructuredDiagnostic) {
    auto bytes = encode_snapshot(sample_snapshot());
    bytes[4] = 9;  // future version
    EXPECT_TRUE(is_iocs(bytes));  // still recognizably a snapshot
    EXPECT_EQ(iocs_version(bytes), 9);
    SnapshotError err;
    EXPECT_FALSE(decode_snapshot(bytes, &err).has_value());
    EXPECT_EQ(err.kind, SnapshotError::Kind::VersionSkew);
    EXPECT_EQ(err.found_version, 9);
    EXPECT_NE(err.to_string().find("v9"), std::string::npos);
}

TEST(Snapshot, TrailingGarbageAfterFooterIsCorrupt) {
    auto bytes = encode_snapshot(sample_snapshot());
    bytes += "extra";
    SnapshotError err;
    EXPECT_FALSE(decode_snapshot(bytes, &err).has_value());
    EXPECT_EQ(err.kind, SnapshotError::Kind::Corrupt);
}

TEST(Snapshot, NotIocsInputIsRejectedWithoutReadingFurther) {
    SnapshotError err;
    EXPECT_FALSE(decode_snapshot("IOCT not a snapshot", &err).has_value());
    EXPECT_EQ(err.kind, SnapshotError::Kind::NotIocs);
    EXPECT_FALSE(is_iocs("IOCT whatever"));
    EXPECT_EQ(iocs_version("IOCT whatever"), std::nullopt);
}

// ---- merge semantics -------------------------------------------------------

TEST(Snapshot, MergeKeepsLabelOnlyWhenAllAgree) {
    auto a = sample_snapshot(1);
    auto b = sample_snapshot(2);
    a.label = b.label = "suite-x";
    a.timestamp = 100;
    b.timestamp = 300;
    auto same = a;
    same.merge(b);
    EXPECT_EQ(same.label, "suite-x");
    EXPECT_EQ(same.timestamp, 300u);  // latest capture wins

    b.label = "suite-y";
    auto mixed = a;
    mixed.merge(b);
    EXPECT_EQ(mixed.label, "");  // disagreement collapses, not reorders
}

TEST(Snapshot, MergeAccumulatesCountersAndWidestThreads) {
    auto a = sample_snapshot(1);
    auto b = sample_snapshot(2);
    a.ingest.threads = 4;
    b.ingest.threads = 2;
    const auto events = a.ingest.events + b.ingest.events;
    const auto bytes = a.ingest.bytes + b.ingest.bytes;
    const auto filtered = a.filtered_out + b.filtered_out;
    a.merge(b);
    EXPECT_EQ(a.ingest.events, events);
    EXPECT_EQ(a.ingest.bytes, bytes);
    EXPECT_EQ(a.ingest.threads, 4u);
    EXPECT_EQ(a.filtered_out, filtered);
}

// Splits a trace by pid into `n` parts (pid % n), preserving per-pid
// event order — the exact invariant (filter state is strictly per-pid)
// that makes split-ingest-merge equal single-pass ingest.
std::vector<std::vector<trace::TraceEvent>> split_by_pid(
    const std::vector<trace::TraceEvent>& events, std::size_t n) {
    std::vector<std::vector<trace::TraceEvent>> parts(n);
    for (const auto& ev : events) parts[ev.pid % n].push_back(ev);
    return parts;
}

TEST(Snapshot, MergeFuzzTreeMergeEqualsSinglePassIngest) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto events = generator_trace(0.015, seed);
        ASSERT_GT(events.size(), 100u) << "seed " << seed;

        IOCov single(config());
        single.consume_binary(trace::encode_trace(events));
        const auto expected = single.snapshot();

        // Vary the split width with the seed so the fuzz covers 2..5
        // shards, including pids that land empty.
        const std::size_t n = 2 + seed % 4;
        std::vector<NamedSnapshot> shards;
        for (const auto& part : split_by_pid(events, n)) {
            IOCov shard(config());
            shard.consume_binary(trace::encode_trace(part));
            auto snap = shard.snapshot();
            // `seconds` is wall-clock telemetry, not coverage state —
            // and double addition is not associative, so byte-level
            // algebra below is asserted with it normalized out.
            snap.ingest.seconds = 0;
            shards.push_back({"shard", std::move(snap)});
        }

        // Left fold, right-to-left fold, and the pairwise tree must all
        // equal the single pass — associativity + commutativity, not
        // just "some merge works".
        IOCovSnapshot left = shards.front().snapshot;
        for (std::size_t i = 1; i < shards.size(); ++i)
            left.merge(shards[i].snapshot);
        IOCovSnapshot right = shards.back().snapshot;
        for (std::size_t i = shards.size() - 1; i-- > 0;) {
            auto tmp = shards[i].snapshot;
            tmp.merge(right);
            right = std::move(tmp);
        }
        const auto tree = merge_snapshots(shards, 1);

        EXPECT_EQ(left.report, expected.report) << "seed " << seed;
        EXPECT_EQ(right.report, expected.report) << "seed " << seed;
        EXPECT_EQ(tree.report, expected.report) << "seed " << seed;
        EXPECT_EQ(left.filtered_out, expected.filtered_out);
        // Byte-level: same value => same encoding, whatever the fold
        // shape was.
        EXPECT_EQ(encode_snapshot(left), encode_snapshot(right));
        EXPECT_EQ(encode_snapshot(left), encode_snapshot(tree));
    }
}

// ---- IOCov public merge API ------------------------------------------------

TEST(Snapshot, IOCovMergeOfSnapshotsEqualsSinglePass) {
    const auto events = generator_trace(0.02, 7);
    IOCov single(config());
    single.consume_binary(trace::encode_trace(events));

    const auto parts = split_by_pid(events, 3);
    IOCov merged(config());
    for (const auto& part : parts) {
        IOCov shard(config());
        shard.consume_binary(trace::encode_trace(part));
        merged.merge(shard.snapshot());
    }
    EXPECT_EQ(merged.report(), single.report());
    EXPECT_EQ(merged.events_filtered_out(), single.events_filtered_out());
    // Same coverage state => same report bytes in the snapshot encoding.
    auto a = merged.snapshot(), b = single.snapshot();
    a.ingest = b.ingest = IngestStats{};
    EXPECT_EQ(encode_snapshot(a), encode_snapshot(b));
}

TEST(Snapshot, IOCovMergeOfIOCovsEqualsSinglePass) {
    const auto events = generator_trace(0.02, 9);
    IOCov single(config());
    single.consume_binary(trace::encode_trace(events));

    const auto parts = split_by_pid(events, 2);
    IOCov a(config()), b(config());
    a.consume_binary(trace::encode_trace(parts[0]));
    b.consume_binary(trace::encode_trace(parts[1]));
    a.merge(b);
    EXPECT_EQ(a.report(), single.report());
    EXPECT_EQ(a.events_filtered_out(), single.events_filtered_out());
    EXPECT_EQ(a.ingest_stats().events, single.ingest_stats().events);
}

// ---- IngestStats / diagnostics accumulation contract -----------------------

TEST(Snapshot, IngestStatsAccumulateAcrossConsumeAndMergeCalls) {
    const auto trace_a = trace::encode_trace(generator_trace(0.01, 3));
    const auto trace_b = trace::encode_trace(generator_trace(0.01, 4));

    IOCov once_each(config());
    once_each.consume_binary(trace_a);
    const auto after_one = once_each.ingest_stats();
    EXPECT_GT(after_one.events, 0u);
    EXPECT_EQ(after_one.bytes, trace_a.size());

    // Second consume adds; nothing resets.
    once_each.consume_binary(trace_b);
    const auto after_two = once_each.ingest_stats();
    EXPECT_EQ(after_two.bytes, trace_a.size() + trace_b.size());
    EXPECT_GT(after_two.events, after_one.events);

    // Merging a snapshot keeps adding into the same totals.
    IOCov other(config());
    other.consume_binary(trace_a);
    once_each.merge(other.snapshot());
    EXPECT_EQ(once_each.ingest_stats().bytes,
              2 * trace_a.size() + trace_b.size());
    EXPECT_EQ(once_each.ingest_stats().events,
              after_two.events + other.ingest_stats().events);

    // snapshot() captures the running totals at that instant.
    EXPECT_EQ(once_each.snapshot().ingest, once_each.ingest_stats());
    // shards_lost stays coherent (no parallel failures here).
    EXPECT_EQ(once_each.shards_lost(), 0u);
}

TEST(Snapshot, SnapshotDroppedCountFeedsDiagnosticsTotal) {
    // A producer with corrupt records: chop a tail record in half.
    auto damaged = trace::encode_trace(generator_trace(0.01, 5));
    damaged.resize(damaged.size() - 7);
    IOCov producer(config());
    const auto dropped = producer.consume_binary(damaged);
    EXPECT_GT(dropped, 0u);
    const auto snap = producer.snapshot();
    EXPECT_EQ(snap.dropped, producer.diagnostics().total());

    // The consumer's --max-errors budget sees the producer's drops.
    IOCov consumer(config());
    consumer.merge(snap);
    EXPECT_EQ(consumer.diagnostics().total(), snap.dropped);
}

}  // namespace
}  // namespace iocov::core
