#include "stats/rmsd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace iocov::stats {
namespace {

TEST(Rmsd, ZeroForIdenticalSeries) {
    const std::vector<double> a{1, 2, 3};
    EXPECT_DOUBLE_EQ(rmsd(a, a), 0.0);
}

TEST(Rmsd, ZeroForEmptyInput) {
    EXPECT_DOUBLE_EQ(rmsd({}, {}), 0.0);
}

TEST(Rmsd, MatchesHandComputedValue) {
    const std::vector<double> a{0, 0};
    const std::vector<double> b{3, 4};
    // sqrt((9 + 16) / 2) = sqrt(12.5)
    EXPECT_DOUBLE_EQ(rmsd(a, b), std::sqrt(12.5));
}

TEST(Rmsd, ThrowsOnLengthMismatch) {
    // Used to be an assert, i.e. a silent out-of-bounds read in
    // NDEBUG builds (the default RelWithDebInfo config defines it).
    const std::vector<double> a{1, 2, 3};
    const std::vector<double> b{1, 2};
    EXPECT_THROW(rmsd(a, b), std::invalid_argument);
    EXPECT_THROW(rmsd(b, a), std::invalid_argument);
}

TEST(Rmsd, SymmetricInArguments) {
    const std::vector<double> a{1, 5, 9};
    const std::vector<double> b{2, 3, 4};
    EXPECT_DOUBLE_EQ(rmsd(a, b), rmsd(b, a));
}

TEST(SafeLog10, FloorsAtOneByDefault) {
    EXPECT_DOUBLE_EQ(safe_log10(0.0), 0.0);
    EXPECT_DOUBLE_EQ(safe_log10(0.5), 0.0);
    EXPECT_DOUBLE_EQ(safe_log10(1.0), 0.0);
    EXPECT_DOUBLE_EQ(safe_log10(1000.0), 3.0);
}

TEST(SafeLog10, CustomFloor) {
    EXPECT_DOUBLE_EQ(safe_log10(5.0, 10.0), 1.0);
    EXPECT_DOUBLE_EQ(safe_log10(100.0, 10.0), 2.0);
}

TEST(MeanStddev, BasicMoments) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(MeanStddev, DegenerateInputs) {
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    const std::vector<double> one{42};
    EXPECT_DOUBLE_EQ(mean(one), 42.0);
    EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

}  // namespace
}  // namespace iocov::stats
