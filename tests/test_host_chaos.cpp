// The durability oracle under chaos (ctest label `chaos`): SIGKILL the
// process at every host-I/O op — and at a spread of torn-write byte
// offsets — while it replaces a snapshot artifact, then assert the
// destination path still holds a *complete* artifact (the prior one or
// the new one, never a torn file).  Same oracle for the full
// ENOSPC/EIO failure sweep, and EINTR storms must not fail at all.
//
// The kill sweeps fork a child that arms host::FaultHook and performs
// the save; the hook raises SIGKILL at the armed op, so the child dies
// exactly where a power cut or OOM kill would land.  The parent owns
// the assertions — nothing in the child reports through gtest.
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/iocov.hpp"
#include "core/snapshot.hpp"
#include "host/fault.hpp"
#include "host/io.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::core {
namespace {

namespace fs = std::filesystem;

/// Two successive artifact generations of one workload: the "prior"
/// artifact on disk and the "next" one being written when chaos hits.
struct Generations {
    IOCovSnapshot prior;
    IOCovSnapshot next;
    std::string prior_bytes;
    std::string next_bytes;
};

const Generations& generations() {
    static const Generations g = [] {
        vfs::FileSystem fss(testers::recommended_fs_config());
        auto fx = testers::prepare_environment(fss, "/mnt/test");
        trace::TraceBuffer buffer;
        syscall::Kernel kernel(fss, &buffer);
        testers::run_xfstests(kernel, fx, 0.03, 77);
        const auto events = buffer.take_events();
        const auto half =
            std::vector<trace::TraceEvent>(events.begin(),
                                           events.begin() +
                                               events.size() / 2);
        Generations out;
        const auto cfg = trace::FilterConfig::mount_point("/mnt/test");
        IOCov a(cfg);
        a.consume_binary(trace::encode_trace(half));
        out.prior = a.snapshot();
        out.prior.label = "gen1";
        IOCov b(cfg);
        b.consume_binary(trace::encode_trace(events));
        out.next = b.snapshot();
        out.next.label = "gen2";
        out.prior_bytes = encode_snapshot(out.prior);
        out.next_bytes = encode_snapshot(out.next);
        return out;
    }();
    return g;
}

std::string read_all(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

class HostChaos : public ::testing::Test {
  protected:
    void SetUp() override {
        host::FaultHook::reset();
        dir_ = fs::temp_directory_path() /
               ("iocov_chaos_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
        target_ = (dir_ / "artifact.iocs").string();
    }
    void TearDown() override {
        host::FaultHook::reset();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /// Crash debris (an orphaned temp file) is acceptable after a
    /// SIGKILL — directory loaders diagnose-and-skip foreign files —
    /// but each sweep iteration starts clean.
    void clear_debris() {
        for (const auto& e : fs::directory_iterator(dir_))
            if (e.path().filename().string().find(".tmp.") !=
                std::string::npos)
                fs::remove(e.path());
    }

    /// Runs `save_snapshot_file(target_, next)` in a forked child with
    /// `spec` armed.  Returns the wait status; the child never reports
    /// through gtest (exit 99 = spec rejected, 42 = save returned
    /// false, 0 = save succeeded; SIGKILL = the armed kill fired).
    int child_save(const std::string& spec) {
        std::fflush(nullptr);
        const pid_t pid = ::fork();
        if (pid == 0) {
            host::FaultHook::reset();
            if (host::FaultHook::configure(spec)) ::_exit(99);
            const bool ok = save_snapshot_file(target_, generations().next);
            ::_exit(ok ? 0 : 42);
        }
        int status = 0;
        ::waitpid(pid, &status, 0);
        return status;
    }

    /// The durability oracle: the artifact path decodes as a complete
    /// snapshot and its bytes are exactly one of the two generations.
    void assert_complete_artifact(const std::string& context) {
        const std::string on_disk = read_all(target_);
        ASSERT_FALSE(on_disk.empty()) << context << ": artifact vanished";
        const bool is_prior = on_disk == generations().prior_bytes;
        const bool is_next = on_disk == generations().next_bytes;
        EXPECT_TRUE(is_prior || is_next)
            << context << ": torn artifact (" << on_disk.size()
            << " bytes, prior=" << generations().prior_bytes.size()
            << ", next=" << generations().next_bytes.size() << ")";
        SnapshotError err;
        EXPECT_TRUE(decode_snapshot(on_disk, &err).has_value())
            << context << ": " << err.to_string();
    }

    /// Ops one fault-free save performs (kill/errno sweeps cover the
    /// range [1, ops+1] so "no fault fired" is a swept point too).
    std::uint64_t ops_per_save() {
        host::FaultHook::reset();
        // An armed-but-never-firing clause turns op counting on.
        EXPECT_EQ(host::FaultHook::configure("errno:open:ENOSPC:999999"),
                  std::nullopt);
        const std::string scratch = (dir_ / "probe.iocs").string();
        EXPECT_TRUE(save_snapshot_file(scratch, generations().prior));
        const std::uint64_t ops = host::FaultHook::total_ops();
        host::FaultHook::reset();
        fs::remove(scratch);
        return ops;
    }

    fs::path dir_;
    std::string target_;
};

TEST_F(HostChaos, SigkillAtEveryOpLeavesCompleteArtifact) {
    const std::uint64_t ops = ops_per_save();
    ASSERT_GE(ops, 5u);  // temp-create, write, sync, close, rename, ...
    for (std::uint64_t k = 1; k <= ops + 1; ++k) {
        ASSERT_TRUE(save_snapshot_file(target_, generations().prior));
        clear_debris();
        const int status = child_save("kill:any:" + std::to_string(k));
        const std::string ctx = "kill:any:" + std::to_string(k);
        if (WIFSIGNALED(status)) {
            EXPECT_EQ(WTERMSIG(status), SIGKILL) << ctx;
        } else {
            // The armed op index was past the save: it ran to the end.
            ASSERT_TRUE(WIFEXITED(status)) << ctx;
            EXPECT_EQ(WEXITSTATUS(status), 0) << ctx;
        }
        assert_complete_artifact(ctx);
    }
}

TEST_F(HostChaos, TornWriteKillAtManyOffsetsLeavesCompleteArtifact) {
    // The hard case from the paper's torn-write discussion: die after
    // persisting exactly `off` bytes of the new artifact's payload.
    // 56 offsets + the op sweep above ≥ 60 distinct kill points.
    const std::size_t payload = generations().next_bytes.size();
    ASSERT_GT(payload, 0u);
    const std::size_t points = 56;
    for (std::size_t i = 0; i <= points; ++i) {
        const std::size_t off = i * payload / points;
        ASSERT_TRUE(save_snapshot_file(target_, generations().prior));
        clear_debris();
        const std::string ctx = "kill:write:1:" + std::to_string(off);
        const int status = child_save(ctx);
        ASSERT_TRUE(WIFSIGNALED(status)) << ctx;
        EXPECT_EQ(WTERMSIG(status), SIGKILL) << ctx;
        // The torn temp file never reached the destination.
        assert_complete_artifact(ctx);
        EXPECT_EQ(read_all(target_), generations().prior_bytes) << ctx;
    }
}

TEST_F(HostChaos, ErrnoSweepAtEveryOpLeavesCompleteArtifact) {
    const std::uint64_t ops = ops_per_save();
    for (const char* err : {"ENOSPC", "EIO", "EDQUOT"}) {
        for (std::uint64_t k = 1; k <= ops + 1; ++k) {
            ASSERT_TRUE(save_snapshot_file(target_, generations().prior));
            host::FaultHook::reset();
            const std::string spec =
                "errno:any:" + std::string(err) + ":" + std::to_string(k);
            ASSERT_EQ(host::FaultHook::configure(spec), std::nullopt);
            SnapshotError serr;
            const bool ok =
                save_snapshot_file(target_, generations().next, &serr);
            host::FaultHook::reset();
            assert_complete_artifact(spec);
            if (ok) {
                EXPECT_EQ(read_all(target_), generations().next_bytes)
                    << spec;
            } else {
                // A failed save is loud and structured, and never
                // destroyed the previous artifact on its way down.
                EXPECT_EQ(serr.kind, SnapshotError::Kind::Io) << spec;
                EXPECT_NE(serr.io_errno, 0) << spec;
            }
        }
    }
}

TEST_F(HostChaos, EintrStormNeverFailsASave) {
    const std::uint64_t ops = ops_per_save();
    for (std::uint64_t k = 1; k <= ops; ++k) {
        ASSERT_TRUE(save_snapshot_file(target_, generations().prior));
        host::FaultHook::reset();
        ASSERT_EQ(host::FaultHook::configure(
                      "errno:any:EINTR:" + std::to_string(k)),
                  std::nullopt);
        SnapshotError serr;
        EXPECT_TRUE(save_snapshot_file(target_, generations().next, &serr))
            << "k=" << k << ": " << serr.to_string();
        host::FaultHook::reset();
        EXPECT_EQ(read_all(target_), generations().next_bytes) << k;
    }
}

TEST_F(HostChaos, CheckpointManifestObeysTheSameContract) {
    // IOCK manifests ride the same writer, so a kill mid-checkpoint
    // leaves the previous complete manifest — the property `--resume`
    // depends on (resuming from half a manifest would double-count).
    Checkpoint gen1;
    gen1.consumed = {"a.iocs"};
    gen1.blocks = {{1, generations().prior}};
    Checkpoint gen2;
    gen2.consumed = {"a.iocs", "b.iocs"};
    gen2.blocks = {{2, generations().next}};
    const std::string g1 = encode_checkpoint(gen1);
    const std::string g2 = encode_checkpoint(gen2);
    const std::string path = (dir_ / "walk.iock").string();

    const std::uint64_t ops = ops_per_save();
    for (std::uint64_t k = 1; k <= ops + 1; ++k) {
        ASSERT_TRUE(save_checkpoint_file(path, gen1));
        clear_debris();
        std::fflush(nullptr);
        const pid_t pid = ::fork();
        if (pid == 0) {
            host::FaultHook::reset();
            if (host::FaultHook::configure("kill:any:" +
                                           std::to_string(k)))
                ::_exit(99);
            ::_exit(save_checkpoint_file(path, gen2) ? 0 : 42);
        }
        int status = 0;
        ::waitpid(pid, &status, 0);
        ASSERT_TRUE(WIFSIGNALED(status) ||
                    (WIFEXITED(status) && WEXITSTATUS(status) == 0))
            << "k=" << k;

        const std::string on_disk = read_all(path);
        EXPECT_TRUE(on_disk == g1 || on_disk == g2) << "k=" << k;
        SnapshotError err;
        EXPECT_TRUE(load_checkpoint_file(path, &err).has_value())
            << "k=" << k << ": " << err.to_string();
    }
}

}  // namespace
}  // namespace iocov::core
