// FileSystem data-path semantics: read/write/truncate, capacity,
// quota, permissions, metadata, xattrs, fault injection.
#include <gtest/gtest.h>

#include "abi/xattr.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::vfs {
namespace {

using abi::Err;

class FsIoTest : public ::testing::Test {
  protected:
    FsIoTest() : fs_(config()) {
        file_ = fs_.create_file(kRootInode, "f", 0644, root_).value();
    }

    static FsConfig config() {
        FsConfig cfg;
        cfg.capacity_blocks = 16;  // 64 KiB
        cfg.max_file_size = 1 << 20;
        cfg.quota_blocks_per_uid = 8;
        cfg.inode_xattr_capacity = 256;
        return cfg;
    }

    FileSystem fs_;
    Credentials root_ = Credentials::root();
    Credentials user_ = Credentials::user(1000, 1000);
    InodeId file_ = kInvalidInode;
};

TEST_F(FsIoTest, WriteReadRoundTrip) {
    const std::vector<std::byte> data{std::byte{1}, std::byte{2},
                                      std::byte{3}};
    auto w = fs_.write(file_, 0, data);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w.value(), 3u);
    std::vector<std::byte> out(3);
    auto r = fs_.read(file_, 0, out);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 3u);
    EXPECT_EQ(out, data);
}

TEST_F(FsIoTest, ReadPastEofIsZeroBytes) {
    std::vector<std::byte> out(8);
    auto r = fs_.read(file_, 100, out);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 0u);
}

TEST_F(FsIoTest, WriteBeyondMaxFileSizeIsEfbig) {
    EXPECT_EQ(fs_.write_pattern(file_, (1 << 20) - 1, 2, std::byte{1})
                  .error(),
              Err::EFBIG_);
    EXPECT_EQ(fs_.truncate(file_, (1 << 20) + 1).error(), Err::EFBIG_);
    EXPECT_TRUE(fs_.truncate(file_, 1 << 20).ok());
}

TEST_F(FsIoTest, CapacityExhaustionIsEnospcAndAtomic) {
    // Root is exempt from quota; capacity is 16 blocks.
    auto w = fs_.write_pattern(file_, 0, 16 * 4096, std::byte{1});
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(fs_.write_pattern(file_, 16 * 4096, 1, std::byte{2}).error(),
              Err::ENOSPC_);
    // The failed write must not have changed the file.
    EXPECT_EQ(fs_.find(file_)->data.size(), 16u * 4096);
}

TEST_F(FsIoTest, OverwriteDoesNotDoubleCharge) {
    ASSERT_TRUE(fs_.write_pattern(file_, 0, 16 * 4096, std::byte{1}).ok());
    // Overwriting allocated blocks needs no new space.
    EXPECT_TRUE(fs_.write_pattern(file_, 0, 4096, std::byte{2}).ok());
}

TEST_F(FsIoTest, QuotaAppliesToNonRootOwners) {
    auto mine =
        fs_.create_file(kRootInode, "mine", 0644, root_).value();
    ASSERT_TRUE(fs_.chown(mine, 1000, 1000, root_).ok());
    ASSERT_TRUE(
        fs_.write_pattern(mine, 0, 8 * 4096, std::byte{1}).ok());
    EXPECT_EQ(fs_.write_pattern(mine, 8 * 4096, 4096, std::byte{1}).error(),
              Err::EDQUOT_);
    // Freeing space (truncate) releases quota.
    ASSERT_TRUE(fs_.truncate(mine, 0).ok());
    EXPECT_TRUE(fs_.write_pattern(mine, 0, 4096, std::byte{1}).ok());
}

TEST_F(FsIoTest, SparseFilesChargeOnlyMappedBlocks) {
    ASSERT_TRUE(fs_.truncate(file_, 1 << 20).ok());  // sparse growth
    const auto usage = fs_.usage();
    ASSERT_TRUE(fs_.write_pattern(file_, 512 * 1024, 4096, std::byte{1})
                    .ok());
    EXPECT_EQ(fs_.usage().used_blocks, usage.used_blocks + 1);
}

TEST_F(FsIoTest, WritesOnReadOnlyFsAreErofs) {
    fs_.set_read_only(true);
    EXPECT_EQ(fs_.write_pattern(file_, 0, 1, std::byte{1}).error(),
              Err::EROFS_);
    EXPECT_EQ(fs_.truncate(file_, 0).error(), Err::EROFS_);
    EXPECT_EQ(fs_.chmod(file_, 0600, root_).error(), Err::EROFS_);
    fs_.set_read_only(false);
    EXPECT_TRUE(fs_.write_pattern(file_, 0, 1, std::byte{1}).ok());
}

TEST_F(FsIoTest, StatReportsSizeBlocksAndTimes) {
    fs_.write_pattern(file_, 0, 5000, std::byte{1});
    auto st = fs_.stat(file_);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.value().size, 5000u);
    EXPECT_EQ(st.value().blocks, 2u * 8);  // 2 fs blocks in 512B units
    EXPECT_EQ(st.value().nlink, 1u);
    EXPECT_GT(st.value().times.mtime, 0u);
}

TEST_F(FsIoTest, ChmodOwnershipRules) {
    EXPECT_EQ(fs_.chmod(file_, 0600, user_).error(), Err::EPERM_);
    EXPECT_TRUE(fs_.chmod(file_, 0600, root_).ok());
    EXPECT_EQ(fs_.find(file_)->perms(), 0600u);
    // Owner may chmod own file.
    auto mine = fs_.create_file(kRootInode, "mine", 0644, root_).value();
    ASSERT_TRUE(fs_.chown(mine, 1000, 1000, root_).ok());
    EXPECT_TRUE(fs_.chmod(mine, 0711, user_).ok());
}

TEST_F(FsIoTest, ChmodClearsSgidForNonGroupMembers) {
    auto mine = fs_.create_file(kRootInode, "mine", 0644, root_).value();
    ASSERT_TRUE(fs_.chown(mine, 1000, 5, root_).ok());
    // Owner whose gid differs from the file's group loses setgid.
    Credentials owner_other_group{1000, 7};
    ASSERT_TRUE(fs_.chmod(mine, 02755, owner_other_group).ok());
    EXPECT_EQ(fs_.find(mine)->perms() & abi::S_ISGID, 0u);
}

TEST_F(FsIoTest, ChownRules) {
    EXPECT_EQ(fs_.chown(file_, 1000, 1000, user_).error(), Err::EPERM_);
    EXPECT_TRUE(fs_.chown(file_, 1000, 1000, root_).ok());
    EXPECT_EQ(fs_.find(file_)->uid, 1000u);
    // Owner can change gid to their own gid only.
    EXPECT_TRUE(fs_.chown(file_, 1000, 1000, user_).ok());
    EXPECT_EQ(fs_.chown(file_, 1000, 99, user_).error(), Err::EPERM_);
}

TEST_F(FsIoTest, ChownClearsSetIdBits) {
    fs_.chmod(file_, 06755, root_);
    ASSERT_TRUE(fs_.chown(file_, 1000, 1000, root_).ok());
    EXPECT_EQ(fs_.find(file_)->perms() & (abi::S_ISUID | abi::S_ISGID), 0u);
}

TEST_F(FsIoTest, AccessCheckMatrix) {
    auto mine = fs_.create_file(kRootInode, "mine", 0640, root_).value();
    ASSERT_TRUE(fs_.chown(mine, 1000, 100, root_).ok());
    // Owner: rw-
    EXPECT_TRUE(fs_.access_check(mine, 6, {1000, 100}).ok());
    EXPECT_FALSE(fs_.access_check(mine, 1, {1000, 100}).ok());
    // Group: r--
    EXPECT_TRUE(fs_.access_check(mine, 4, {2000, 100}).ok());
    EXPECT_FALSE(fs_.access_check(mine, 2, {2000, 100}).ok());
    // Other: ---
    EXPECT_FALSE(fs_.access_check(mine, 4, {3000, 300}).ok());
    // Root: rw always; x only with some x bit.
    EXPECT_TRUE(fs_.access_check(mine, 6, root_).ok());
    EXPECT_FALSE(fs_.access_check(mine, 1, root_).ok());
    fs_.chmod(mine, 0100, {1000, 100});
    EXPECT_TRUE(fs_.access_check(mine, 1, root_).ok());
}

TEST_F(FsIoTest, XattrSetGetListRemove) {
    const std::vector<std::byte> v{std::byte{7}, std::byte{8}};
    ASSERT_TRUE(fs_.set_xattr(file_, "user.a", v, 0, root_).ok());
    auto got = fs_.get_xattr(file_, "user.a");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), v);
    auto names = fs_.list_xattr(file_);
    ASSERT_TRUE(names.ok());
    EXPECT_EQ(names.value(), std::vector<std::string>{"user.a"});
    EXPECT_TRUE(fs_.remove_xattr(file_, "user.a", root_).ok());
    EXPECT_EQ(fs_.get_xattr(file_, "user.a").error(), Err::ENODATA_);
    EXPECT_EQ(fs_.remove_xattr(file_, "user.a", root_).error(),
              Err::ENODATA_);
}

TEST_F(FsIoTest, XattrCreateReplaceFlags) {
    const std::vector<std::byte> v{std::byte{1}};
    EXPECT_EQ(
        fs_.set_xattr(file_, "user.a", v, abi::XATTR_REPLACE_, root_)
            .error(),
        Err::ENODATA_);
    ASSERT_TRUE(
        fs_.set_xattr(file_, "user.a", v, abi::XATTR_CREATE_, root_).ok());
    EXPECT_EQ(
        fs_.set_xattr(file_, "user.a", v, abi::XATTR_CREATE_, root_)
            .error(),
        Err::EEXIST_);
    EXPECT_TRUE(
        fs_.set_xattr(file_, "user.a", v, abi::XATTR_REPLACE_, root_).ok());
}

TEST_F(FsIoTest, XattrInInodeSpaceExhaustionIsEnospc) {
    // Capacity 256 bytes; each entry costs name + value + 16 overhead.
    std::vector<std::byte> big(200, std::byte{1});
    ASSERT_TRUE(fs_.set_xattr(file_, "user.big", big, 0, root_).ok());
    std::vector<std::byte> more(64, std::byte{2});
    EXPECT_EQ(fs_.set_xattr(file_, "user.more", more, 0, root_).error(),
              Err::ENOSPC_);
    // Replacing the big attr with a smaller one frees space.
    std::vector<std::byte> small(8, std::byte{3});
    ASSERT_TRUE(fs_.set_xattr(file_, "user.big", small, 0, root_).ok());
    EXPECT_TRUE(fs_.set_xattr(file_, "user.more", more, 0, root_).ok());
}

TEST_F(FsIoTest, XattrOwnershipRule) {
    const std::vector<std::byte> v{std::byte{1}};
    EXPECT_EQ(fs_.set_xattr(file_, "user.a", v, 0, user_).error(),
              Err::EPERM_);
}

TEST_F(FsIoTest, FaultInjectionOneShotAndPeriodic) {
    FaultInjector inj;
    inj.arm("write", Err::EIO_);
    EXPECT_EQ(inj.check("read"), std::nullopt);
    EXPECT_EQ(inj.check("write"), Err::EIO_);
    EXPECT_EQ(inj.check("write"), std::nullopt);  // one-shot consumed

    inj.arm("open", Err::EINTR_, /*skip=*/2);
    EXPECT_EQ(inj.check("open"), std::nullopt);
    EXPECT_EQ(inj.check("open"), std::nullopt);
    EXPECT_EQ(inj.check("open"), Err::EINTR_);

    inj.arm_periodic("*", Err::ENOMEM_, 3);
    EXPECT_EQ(inj.check("anything"), std::nullopt);
    EXPECT_EQ(inj.check("anything"), std::nullopt);
    EXPECT_EQ(inj.check("anything"), Err::ENOMEM_);
    EXPECT_EQ(inj.check("anything"), std::nullopt);

    inj.clear();
    EXPECT_TRUE(inj.empty());
}

TEST_F(FsIoTest, HooksObserveProbesAndInjectFaults) {
    struct Hooks final : VfsHooks {
        int probes = 0;
        bool fire = false;
        void probe(std::string_view) override { ++probes; }
        std::optional<abi::Err> inject(std::string_view site) override {
            if (fire && site == "ext4_file_write_iter") return Err::EIO_;
            return std::nullopt;
        }
    } hooks;
    fs_.set_hooks(&hooks);
    ASSERT_TRUE(fs_.write_pattern(file_, 0, 16, std::byte{1}).ok());
    EXPECT_GT(hooks.probes, 0);
    hooks.fire = true;
    EXPECT_EQ(fs_.write_pattern(file_, 0, 16, std::byte{1}).error(),
              Err::EIO_);
    fs_.set_hooks(nullptr);
    EXPECT_TRUE(fs_.write_pattern(file_, 0, 16, std::byte{1}).ok());
}

}  // namespace
}  // namespace iocov::vfs
