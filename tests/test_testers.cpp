// Tester simulators: profile calibration invariants and generated-
// workload shape properties.
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "core/iocov.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "testers/profile.hpp"
#include "testers/rng.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::testers {
namespace {

using namespace iocov::abi;  // NOLINT

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), b.next());
    Rng c(43);
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, RangeStaysInBounds) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(10, 20);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 20u);
    }
}

TEST(Rng, WeightedPickRespectsWeights) {
    Rng rng(7);
    const std::vector<double> weights{0.0, 1.0, 9.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 10000; ++i) ++counts[weighted_pick(rng, weights)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(Profiles, XfstestsOpenCalibrationIsExact) {
    const auto p = xfstests_profile();
    std::uint64_t rdonly = 0, total = 0;
    for (const auto& combo : p.open_combos) {
        total += combo.count;
        if ((combo.flags & O_ACCMODE) == O_RDONLY) rdonly += combo.count;
    }
    // The paper's exact number for xfstests O_RDONLY.
    EXPECT_EQ(rdonly, 4099770u);
    // Table 1 cardinality distribution within 0.15 percentage points.
    const double expected[6] = {6.1, 28.2, 18.2, 46.8, 0.5, 0.4};
    double measured[6] = {};
    for (const auto& combo : p.open_combos)
        measured[open_flag_cardinality(combo.flags) - 1] +=
            static_cast<double>(combo.count);
    for (int k = 0; k < 6; ++k)
        EXPECT_NEAR(100.0 * measured[k] / static_cast<double>(total),
                    expected[k], 0.15)
            << "cardinality " << k + 1;
}

TEST(Profiles, CrashmonkeyOpenCalibrationIsExact) {
    const auto p = crashmonkey_profile();
    std::uint64_t rdonly = 0;
    for (const auto& combo : p.open_combos)
        if ((combo.flags & O_ACCMODE) == O_RDONLY) rdonly += combo.count;
    EXPECT_EQ(rdonly, 7924u);  // the paper's exact number
    // No combo exceeds 6 flags (Table 1: column 6 is the last).
    for (const auto& combo : p.open_combos)
        EXPECT_LE(open_flag_cardinality(combo.flags), 6u);
}

TEST(Profiles, WriteSizesRespectFig3Limits) {
    const auto xfs = xfstests_profile();
    unsigned max_exp = 0;
    bool has_zero = false;
    for (const auto& b : xfs.write_sizes) {
        if (b.zero) has_zero = true;
        else max_exp = std::max(max_exp, b.exp);
    }
    EXPECT_TRUE(has_zero);
    EXPECT_EQ(max_exp, 28u);  // 258 MiB bucket; nothing above

    const auto cm = crashmonkey_profile();
    for (const auto& b : cm.write_sizes) {
        EXPECT_FALSE(b.zero);  // CrashMonkey never writes 0 bytes
        EXPECT_LE(b.exp, 16u);
    }
}

TEST(Fixtures, PrepareEnvironmentBuildsAllObjects) {
    vfs::FileSystem fs;
    const auto fx = prepare_environment(fs, "/mnt/test");
    const auto root = vfs::Credentials::root();
    for (const auto& path :
         {fx.scratch, fx.plain_file, fx.noperm_file, fx.noperm_dir,
          fx.busy_dev, fx.nodriver_dev, fx.nounit_dev, fx.fifo,
          fx.running_exe, fx.big_file, fx.inner_mount, fx.deep_dir}) {
        EXPECT_TRUE(fs.resolve(path, root).ok()) << path;
    }
    // The loop links exist but do not resolve.
    EXPECT_EQ(fs.resolve(fx.loop_link, root).error(), abi::Err::ELOOP_);
    EXPECT_EQ(fs.resolve(fx.dangling_link, root).error(),
              abi::Err::ENOENT_);
    // The big file is sparse (3 GiB size, no blocks).
    const auto big = fs.resolve(fx.big_file, root).value();
    EXPECT_EQ(fs.stat(big).value().size, 3ULL << 30);
    EXPECT_EQ(fs.stat(big).value().blocks, 0u);
}

class GeneratorShape : public ::testing::Test {
  protected:
    static constexpr double kScale = 0.005;

    core::CoverageReport run(bool xfstests) {
        vfs::FileSystem fs(recommended_fs_config());
        auto fx = prepare_environment(fs, "/mnt/test");
        core::IOCov iocov;
        syscall::Kernel kernel(fs, &iocov.live_sink());
        if (xfstests) run_xfstests(kernel, fx, kScale, 7);
        else run_crashmonkey(kernel, fx, kScale, 7);
        return iocov.report();
    }
};

TEST_F(GeneratorShape, MeasuredOpenFlagsMatchScaledTargets) {
    const auto r = run(true);
    const auto& hist = r.find_input("open", "flags")->hist;
    // O_RDONLY scaled: 4,099,770 * 0.005 ~ 20,499 (+/- small workload
    // noise from budget overdraws).
    const double expected = 4099770 * kScale;
    EXPECT_NEAR(static_cast<double>(hist.count("O_RDONLY")), expected,
                expected * 0.03);
    // The paper's untested flags stay untested.
    for (const char* flag : {"O_LARGEFILE", "O_PATH", "O_TMPFILE",
                             "O_ASYNC", "O_NOCTTY"})
        EXPECT_EQ(hist.count(flag), 0u) << flag;
}

TEST_F(GeneratorShape, XfstestsDominatesCrashmonkeyEverywhere) {
    const auto xfs = run(true);
    const auto cm = run(false);
    const auto& xh = xfs.find_input("open", "flags")->hist;
    const auto& ch = cm.find_input("open", "flags")->hist;
    for (const auto& row : ch.rows()) {
        if (row.count == 0) continue;
        EXPECT_GE(xh.count(row.label), row.count) << row.label;
    }
    // Output coverage: xfstests wins everywhere except ENOTDIR.
    const auto& xo = xfs.find_output("open")->hist;
    const auto& co = cm.find_output("open")->hist;
    EXPECT_GT(co.count("ENOTDIR"), xo.count("ENOTDIR"));
    for (const auto& row : xo.rows()) {
        if (row.label == "ENOTDIR" || row.label == "OK") continue;
        EXPECT_GE(row.count, co.count(row.label)) << row.label;
    }
}

TEST_F(GeneratorShape, DeterministicForFixedSeed) {
    const auto a = run(true);
    const auto b = run(true);
    EXPECT_EQ(a.find_input("open", "flags")->hist,
              b.find_input("open", "flags")->hist);
    EXPECT_EQ(a.find_output("open")->hist, b.find_output("open")->hist);
    EXPECT_EQ(a.events_tracked, b.events_tracked);
}

TEST_F(GeneratorShape, CrashmonkeyLeavesXattrAndChmodUntested) {
    const auto cm = run(false);
    EXPECT_EQ(cm.find_input("setxattr", "size")->hist.total(), 0u);
    EXPECT_EQ(cm.find_input("chmod", "mode")->hist.total(), 0u);
    // But xfstests exercises both.
    const auto xfs = run(true);
    EXPECT_GT(xfs.find_input("setxattr", "size")->hist.total(), 0u);
    EXPECT_GT(xfs.find_input("chmod", "mode")->hist.total(), 0u);
}

TEST_F(GeneratorShape, ChdirIdentifierPartitionsDiverseOnlyForXfstests) {
    const auto xfs = run(true);
    const auto& xh = xfs.find_input("chdir", "pathname")->hist;
    EXPECT_GT(xh.count("absolute"), 0u);
    EXPECT_GT(xh.count("relative"), 0u);
    EXPECT_GT(xh.count("dot"), 0u);
    EXPECT_GT(xh.count("dotdot"), 0u);
    EXPECT_GT(xh.count("via-fd"), 0u);
    const auto cm = run(false);
    const auto& ch = cm.find_input("chdir", "pathname")->hist;
    EXPECT_GT(ch.count("absolute"), 0u);
    EXPECT_EQ(ch.count("dotdot"), 0u);
}

TEST_F(GeneratorShape, LtpIsWideButShallow) {
    vfs::FileSystem fs(recommended_fs_config());
    auto fx = prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    run_ltp(kernel, fx, 0.05, 7);
    const auto& r = iocov.report();

    // Shallow: far fewer events than xfstests at the same scale.
    const auto xfs = run(true);
    EXPECT_LT(r.events_tracked, xfs.events_tracked);

    // Wide: every lseek whence (including an INVALID value via its
    // EINVAL conformance test), every chmod bit, and a broad error set.
    EXPECT_EQ(r.find_input("lseek", "whence")->hist.untested().size(),
              0u);
    EXPECT_EQ(r.find_input("chmod", "mode")->hist.coverage_fraction(),
              1.0);
    const auto& open_out = r.find_output("open")->hist;
    EXPECT_GT(open_out.tested().size(), 12u);
    // LTP covers ENODEV, which xfstests leaves untested (Fig. 4).
    EXPECT_GT(open_out.count("ENODEV"), 0u);
}

TEST(Profiles, CrashmonkeyFullVolumeRunIsOnTarget) {
    // At scale 1.0 the generated trace must hit the paper's O_RDONLY
    // count exactly: workload phases and error scenarios all draw from
    // the same open budget (guards against budget-accounting leaks such
    // as the O_TMPFILE/O_DIRECTORY composite-mask bug).
    vfs::FileSystem fs(recommended_fs_config());
    auto fx = prepare_environment(fs, "/mnt/test");
    core::IOCov iocov;
    syscall::Kernel kernel(fs, &iocov.live_sink());
    run_crashmonkey(kernel, fx, 1.0, 42);
    const auto& hist =
        iocov.report().find_input("open", "flags")->hist;
    // Small overdrafts from unbudgeted scenario fallbacks (EEXIST's
    // write-access half) are expected; the O_RDONLY marginal is exact.
    EXPECT_NEAR(static_cast<double>(hist.count("O_RDONLY")), 7924.0,
                7924.0 * 0.01);
}

TEST(RunStatsCheck, GeneratorReportsItsOwnActivity) {
    vfs::FileSystem fs(recommended_fs_config());
    auto fx = prepare_environment(fs, "/mnt/test");
    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fs, &buffer);
    const auto stats = run_crashmonkey(kernel, fx, 0.02, 1);
    EXPECT_GT(stats.opens, 0u);
    EXPECT_GT(stats.writes, 0u);
    EXPECT_GT(stats.reads, 0u);
    EXPECT_GT(stats.error_scenarios, 0u);
    // The trace contains at least as many events as counted operations
    // (closes, fsyncs, and error probes add more).
    EXPECT_GE(buffer.size(), stats.opens + stats.writes + stats.reads);
}

}  // namespace
}  // namespace iocov::testers
