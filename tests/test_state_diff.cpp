// diff_states: the state-pair comparator the crash oracle is built on.
// Covers the canonical pairs — equal states, data loss (size and
// content), metadata loss (mode, owner, xattrs, symlink target), a
// spurious extra file under both allow_extra policies, missing entries,
// type mismatches — and the check_data/check_meta opt-outs.
#include "core/diff.hpp"

#include <gtest/gtest.h>

#include <string>

namespace iocov::core {
namespace {

StateFact file_fact(std::uint64_t size, std::uint64_t hash,
                    std::uint32_t mode = 0100644) {
    StateFact f;
    f.type = StateFact::Type::File;
    f.mode = mode;
    f.size = size;
    f.content_hash = hash;
    return f;
}

StateFact dir_fact(std::uint32_t mode = 040755) {
    StateFact f;
    f.type = StateFact::Type::Dir;
    f.mode = mode;
    return f;
}

StateSnapshot small_state() {
    StateSnapshot s;
    s.entries["/"] = dir_fact();
    s.entries["/d"] = dir_fact(040750);
    s.entries["/d/f"] = file_fact(100, 0xABCD);
    return s;
}

std::size_t count_kind(const std::vector<StateDelta>& deltas,
                       StateDelta::Kind kind) {
    std::size_t n = 0;
    for (const auto& d : deltas) n += d.kind == kind;
    return n;
}

TEST(StateDiff, EqualStatesProduceNoDeltas) {
    const auto a = small_state();
    const auto b = small_state();
    EXPECT_TRUE(diff_states(a, b).empty());
    EXPECT_TRUE(diff_states(a, b, {.allow_extra = false}).empty());
}

TEST(StateDiff, DataLossBySizeAndByContent) {
    const auto expected = small_state();
    auto shrunk = small_state();
    shrunk.entries["/d/f"].size = 40;  // torn tail lost bytes
    auto deltas = diff_states(expected, shrunk);
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(deltas[0].kind, StateDelta::Kind::DataLoss);
    EXPECT_EQ(deltas[0].path, "/d/f");

    auto rewritten = small_state();
    rewritten.entries["/d/f"].content_hash = 0x1234;  // same size, new bytes
    deltas = diff_states(expected, rewritten);
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(deltas[0].kind, StateDelta::Kind::DataLoss);
}

TEST(StateDiff, MetadataLossCombinesModeOwnerXattrsTarget) {
    auto expected = small_state();
    expected.entries["/d/f"].xattr_hash = 7;
    auto actual = small_state();
    actual.entries["/d/f"].mode = 0100600;
    actual.entries["/d/f"].uid = 1000;
    actual.entries["/d/f"].xattr_hash = 0;
    const auto deltas = diff_states(expected, actual);
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(deltas[0].kind, StateDelta::Kind::MetadataLoss);
    // All three divergences surface in one delta's detail.
    EXPECT_NE(deltas[0].detail.find("mode"), std::string::npos);
    EXPECT_NE(deltas[0].detail.find("owner"), std::string::npos);
    EXPECT_NE(deltas[0].detail.find("xattr"), std::string::npos);
}

TEST(StateDiff, SymlinkTargetLossIsMetadata) {
    StateSnapshot expected;
    expected.entries["/"] = dir_fact();
    expected.entries["/s"].type = StateFact::Type::Symlink;
    expected.entries["/s"].symlink_target = "/old";
    auto actual = expected;
    actual.entries["/s"].symlink_target = "/new";
    const auto deltas = diff_states(expected, actual);
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(deltas[0].kind, StateDelta::Kind::MetadataLoss);
}

TEST(StateDiff, MissingEntryAndTypeMismatch) {
    const auto expected = small_state();
    StateSnapshot actual;
    actual.entries["/"] = dir_fact();
    actual.entries["/d"] = file_fact(0, 0);  // was a dir
    auto deltas = diff_states(expected, actual);
    EXPECT_EQ(count_kind(deltas, StateDelta::Kind::TypeMismatch), 1u);
    EXPECT_EQ(count_kind(deltas, StateDelta::Kind::Missing), 1u);
}

TEST(StateDiff, ExtraOnlyReportedWhenDisallowed) {
    const auto expected = small_state();
    auto actual = small_state();
    actual.entries["/d/ghost"] = file_fact(5, 1);
    EXPECT_TRUE(diff_states(expected, actual).empty());  // allow_extra
    const auto strict = diff_states(expected, actual, {.allow_extra = false});
    ASSERT_EQ(strict.size(), 1u);
    EXPECT_EQ(strict[0].kind, StateDelta::Kind::Extra);
    EXPECT_EQ(strict[0].path, "/d/ghost");
}

TEST(StateDiff, CheckFlagsSuppressInvalidatedFacts) {
    auto expected = small_state();
    auto actual = small_state();
    actual.entries["/d/f"].content_hash = 0x9999;
    actual.entries["/d/f"].mode = 0100600;
    // A tail write / tail chmod invalidated both aspects: no deltas.
    expected.entries["/d/f"].check_data = false;
    expected.entries["/d/f"].check_meta = false;
    EXPECT_TRUE(diff_states(expected, actual).empty());
    // Data stays suppressed while metadata is re-armed.
    expected.entries["/d/f"].check_meta = true;
    const auto deltas = diff_states(expected, actual);
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(deltas[0].kind, StateDelta::Kind::MetadataLoss);
}

TEST(StateDiff, DeltaToStringNamesKindAndPath) {
    const auto expected = small_state();
    StateSnapshot actual;
    actual.entries["/"] = dir_fact();
    const auto deltas = diff_states(expected, actual);
    ASSERT_FALSE(deltas.empty());
    const auto s = deltas[0].to_string();
    EXPECT_NE(s.find("missing"), std::string::npos);
    EXPECT_NE(s.find(deltas[0].path), std::string::npos);
}

}  // namespace
}  // namespace iocov::core
