// Fleet-level snapshot aggregation: load_snapshot_dir + merge_snapshots
// determinism at every thread count, per-file rejection diagnostics for
// corrupt/foreign/version-skewed entries, ≥8-shard merges equal to
// single-pass ingest, and merge_summary_json stability.
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/iocov.hpp"
#include "core/snapshot.hpp"
#include "syscall/kernel.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/binary_format.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::core {
namespace {

namespace fs = std::filesystem;

trace::FilterConfig config() {
    return trace::FilterConfig::mount_point("/mnt/test");
}

std::vector<trace::TraceEvent> generator_trace(double scale,
                                               std::uint64_t seed) {
    vfs::FileSystem fss(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(fss, "/mnt/test");
    trace::TraceBuffer buffer;
    syscall::Kernel kernel(fss, &buffer);
    testers::run_xfstests(kernel, fx, scale, seed);
    return buffer.take_events();
}

/// Unique temp dir populated with named byte blobs, removed on exit.
class SnapDir {
  public:
    explicit SnapDir(
        const std::vector<std::pair<std::string, std::string>>& files) {
        dir_ = fs::temp_directory_path() /
               ("iocov_snapdir_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        fs::create_directories(dir_);
        for (const auto& [name, bytes] : files) {
            std::ofstream out(dir_ / name, std::ios::binary);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
    }
    ~SnapDir() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path() const { return dir_.string(); }

  private:
    static inline int counter_ = 0;
    fs::path dir_;
};

/// Eight per-pid shard snapshots of one workload, plus the single-pass
/// snapshot they must merge back into.  Telemetry seconds are zeroed so
/// byte-level determinism assertions are exact (see test_snapshot.cpp).
struct Fleet {
    std::vector<std::pair<std::string, std::string>> files;
    IOCovSnapshot expected;
};

Fleet make_fleet(std::uint64_t seed) {
    const auto events = generator_trace(0.03, seed);
    std::vector<std::vector<trace::TraceEvent>> parts(8);
    for (const auto& ev : events) parts[ev.pid % 8].push_back(ev);

    Fleet fleet;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        IOCov shard(config());
        shard.consume_binary(trace::encode_trace(parts[i]));
        auto snap = shard.snapshot();
        snap.ingest.seconds = 0;
        snap.label = "shard";
        snap.timestamp = 1000 + i;
        fleet.files.push_back(
            {"shard" + std::to_string(i) + ".iocs", encode_snapshot(snap)});
    }
    IOCov single(config());
    single.consume_binary(trace::encode_trace(events));
    fleet.expected = single.snapshot();
    return fleet;
}

TEST(SnapshotMerge, EightShardsMergeBackToSinglePassAtAnyThreadCount) {
    const auto fleet = make_fleet(21);
    SnapDir dir(fleet.files);

    std::string first_bytes;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        auto load = load_snapshot_dir(dir.path(), threads);
        ASSERT_TRUE(load.has_value()) << threads << " threads";
        ASSERT_EQ(load->snapshots.size(), 8u);
        EXPECT_EQ(load->rejected, 0u);
        // Name order regardless of which lane finished first.
        for (std::size_t i = 0; i < 8; ++i)
            EXPECT_EQ(load->snapshots[i].name,
                      "shard" + std::to_string(i) + ".iocs");

        const auto merged =
            merge_snapshots(std::move(load->snapshots), threads);
        EXPECT_EQ(merged.report, fleet.expected.report)
            << threads << " threads";
        EXPECT_EQ(merged.filtered_out, fleet.expected.filtered_out);
        EXPECT_EQ(merged.label, "shard");     // all shards agree
        EXPECT_EQ(merged.timestamp, 1007u);   // max of the stamps

        // The headline determinism claim: byte-identical at any thread
        // count.
        const auto bytes = encode_snapshot(merged);
        if (first_bytes.empty()) first_bytes = bytes;
        EXPECT_EQ(bytes, first_bytes) << threads << " threads";
    }
}

TEST(SnapshotMerge, ForeignAndDamagedFilesAreDiagnosedNotFatal) {
    auto fleet = make_fleet(22);
    // A README, a torn snapshot, a bit-flipped snapshot, and a
    // version-skewed snapshot all land in the drop box.
    std::string torn = fleet.files[0].second;
    torn.resize(torn.size() / 2);
    std::string flipped = fleet.files[1].second;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x01);
    std::string skewed = fleet.files[2].second;
    skewed[4] = 7;
    fleet.files.push_back({"README.md", "not a snapshot\n"});
    fleet.files.push_back({"torn.iocs", torn});
    fleet.files.push_back({"flipped.iocs", flipped});
    fleet.files.push_back({"skewed.iocs", skewed});
    SnapDir dir(fleet.files);

    const auto load = load_snapshot_dir(dir.path(), 4);
    ASSERT_TRUE(load.has_value());
    EXPECT_EQ(load->snapshots.size(), 8u);  // the healthy shards
    EXPECT_EQ(load->rejected, 4u);          // feeds --max-errors
    EXPECT_EQ(load->diags.total(), 4u);
    // Each rejection carries a per-file, named diagnostic.
    std::string all;
    for (const auto& d : load->diags.entries()) all += d.reason + "\n";
    EXPECT_NE(all.find("README.md"), std::string::npos);
    EXPECT_NE(all.find("torn.iocs"), std::string::npos);
    EXPECT_NE(all.find("flipped.iocs"), std::string::npos);
    EXPECT_NE(all.find("skewed.iocs"), std::string::npos);
    EXPECT_NE(all.find("version skew"), std::string::npos);

    // The healthy shards still merge to the single-pass state.
    const auto merged = merge_snapshots(load->snapshots, 2);
    EXPECT_EQ(merged.report, fleet.expected.report);
}

TEST(SnapshotMerge, EmptyAndMissingDirectories) {
    SnapDir dir({});
    const auto load = load_snapshot_dir(dir.path(), 2);
    ASSERT_TRUE(load.has_value());
    EXPECT_TRUE(load->snapshots.empty());
    EXPECT_EQ(load->rejected, 0u);
    EXPECT_EQ(merge_snapshots(load->snapshots, 2), IOCovSnapshot{});

    EXPECT_FALSE(
        load_snapshot_dir(dir.path() + "/definitely-missing", 2)
            .has_value());
}

TEST(SnapshotMerge, SingleSnapshotMergesToItself) {
    const auto fleet = make_fleet(23);
    SnapDir dir({fleet.files[0]});
    auto load = load_snapshot_dir(dir.path(), 1);
    ASSERT_TRUE(load.has_value());
    ASSERT_EQ(load->snapshots.size(), 1u);
    const auto original = load->snapshots[0].snapshot;
    EXPECT_EQ(merge_snapshots(std::move(load->snapshots), 4), original);
}

TEST(SnapshotMerge, SaveLoadFileRoundTrip) {
    const auto fleet = make_fleet(24);
    SnapshotError err;
    const auto path =
        (fs::temp_directory_path() /
         ("iocov_snap_rt_" + std::to_string(::getpid()) + ".iocs"))
            .string();
    ASSERT_TRUE(save_snapshot_file(path, fleet.expected));
    const auto loaded = load_snapshot_file(path, &err);
    ASSERT_TRUE(loaded.has_value()) << err.to_string();
    EXPECT_EQ(*loaded, fleet.expected);
    fs::remove(path);

    EXPECT_FALSE(load_snapshot_file(path, &err).has_value());
    EXPECT_EQ(err.kind, SnapshotError::Kind::Io);
    EXPECT_EQ(err.io_errno, ENOENT);
    EXPECT_EQ(err.reason.find("cannot open file"), 0u);
}

TEST(SnapshotMerge, SummaryJsonIsStableAcrossThreadCounts) {
    const auto fleet = make_fleet(25);
    SnapDir dir(fleet.files);
    std::string first;
    for (const unsigned threads : {1u, 4u}) {
        auto load = load_snapshot_dir(dir.path(), threads);
        ASSERT_TRUE(load.has_value());
        const auto merged = merge_snapshots(load->snapshots, threads);
        const auto json = merge_summary_json(*load, merged);
        EXPECT_NE(json.find("\"snapshots\": 8"), std::string::npos);
        EXPECT_NE(json.find("\"spaces\""), std::string::npos);
        if (first.empty()) first = json;
        EXPECT_EQ(json, first) << threads << " threads";
    }
}

}  // namespace
}  // namespace iocov::core
