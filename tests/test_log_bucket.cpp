#include "stats/log_bucket.hpp"

#include <gtest/gtest.h>

namespace iocov::stats {
namespace {

TEST(LogBucket, ZeroIsItsOwnPartition) {
    const auto b = log_bucket_of(0);
    EXPECT_EQ(b.kind, LogBucket::Kind::Zero);
    EXPECT_EQ(bucket_label(b), "=0");
    EXPECT_EQ(bucket_lower_bound(b), 0);
    EXPECT_EQ(bucket_upper_bound(b), 0);
}

TEST(LogBucket, NegativeIsItsOwnPartition) {
    const auto b = log_bucket_of(-1);
    EXPECT_EQ(b.kind, LogBucket::Kind::Negative);
    EXPECT_EQ(bucket_label(b), "<0");
    EXPECT_EQ(log_bucket_of(-123456789), b);
}

TEST(LogBucket, PowersOfTwoStartNewBuckets) {
    for (unsigned e = 0; e < 63; ++e) {
        const auto v = std::int64_t{1} << e;
        const auto b = log_bucket_of(v);
        ASSERT_EQ(b.kind, LogBucket::Kind::Pow2);
        EXPECT_EQ(b.exponent, e) << "value " << v;
        EXPECT_EQ(bucket_lower_bound(b), v);
    }
}

TEST(LogBucket, UpperBoundIsOneBelowNextPower) {
    const auto b = log_bucket_of(1024);
    EXPECT_EQ(bucket_upper_bound(b), 2047);
}

TEST(LogBucket, ValueJustBelowBoundaryStaysInLowerBucket) {
    EXPECT_EQ(log_bucket_of(2047).exponent, 10u);
    EXPECT_EQ(log_bucket_of(2048).exponent, 11u);
}

TEST(LogBucket, PaperExampleBucket10Covers1024To2047) {
    // The paper: "x = 10 represents all write sizes from 2^10 to
    // 2^11 - 1 (or 1024-2047)".
    for (std::int64_t v : {1024, 1500, 2047}) {
        EXPECT_EQ(log_bucket_of(v).exponent, 10u) << v;
    }
}

TEST(LogBucket, The258MiBWriteLandsInBucket28) {
    // Fig. 3's annotated maximum write size.
    EXPECT_EQ(log_bucket_of(258LL << 20).exponent, 28u);
}

TEST(LogBucket, OrderingFollowsValueOrdering) {
    EXPECT_LT(log_bucket_of(-5), log_bucket_of(0));
    EXPECT_LT(log_bucket_of(0), log_bucket_of(1));
    EXPECT_LT(log_bucket_of(1), log_bucket_of(2));
    EXPECT_LT(log_bucket_of(1000), log_bucket_of(100000));
}

TEST(LogBucket, MaxInt64DoesNotOverflow) {
    const auto b = log_bucket_of(std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(b.exponent, 62u);
    EXPECT_EQ(bucket_upper_bound(b),
              std::numeric_limits<std::int64_t>::max());
}

TEST(LogBucket, SizeLabelsUseBinaryUnits) {
    EXPECT_EQ(bucket_size_label(log_bucket_of(1)), "1B");
    EXPECT_EQ(bucket_size_label(log_bucket_of(4096)), "4KiB");
    EXPECT_EQ(bucket_size_label(log_bucket_of(1 << 20)), "1MiB");
    EXPECT_EQ(bucket_size_label(log_bucket_of(0)), "0B");
}

TEST(HumanSize, FormatsFractionsAndExactUnits) {
    EXPECT_EQ(human_size(0), "0B");
    EXPECT_EQ(human_size(1536), "1.5KiB");
    EXPECT_EQ(human_size(258ULL << 20), "258MiB");
    EXPECT_EQ(human_size(1ULL << 40), "1TiB");
}

TEST(ParseBucketLabel, RoundTripsAllLabels) {
    for (std::int64_t v : {-3LL, 0LL, 1LL, 7LL, 4096LL, 1LL << 40}) {
        const auto b = log_bucket_of(v);
        const auto parsed = parse_bucket_label(bucket_label(b));
        ASSERT_TRUE(parsed.has_value()) << bucket_label(b);
        EXPECT_EQ(*parsed, b);
    }
}

TEST(ParseBucketLabel, RejectsGarbage) {
    EXPECT_FALSE(parse_bucket_label(""));
    EXPECT_FALSE(parse_bucket_label("2^"));
    EXPECT_FALSE(parse_bucket_label("2^x"));
    EXPECT_FALSE(parse_bucket_label("2^64"));
    EXPECT_FALSE(parse_bucket_label("=1"));
    EXPECT_FALSE(parse_bucket_label("2^10trailing"));
}

// Property sweep: every value maps into a bucket whose bounds contain it.
class LogBucketProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LogBucketProperty, BoundsContainValue) {
    const std::int64_t v = GetParam();
    const auto b = log_bucket_of(v);
    EXPECT_LE(bucket_lower_bound(b), v);
    EXPECT_GE(bucket_upper_bound(b), v);
}

INSTANTIATE_TEST_SUITE_P(
    Values, LogBucketProperty,
    ::testing::Values(std::numeric_limits<std::int64_t>::min(), -4096, -1, 0,
                      1, 2, 3, 511, 512, 513, 4095, 4096, 65535, 65536,
                      (1LL << 31) - 1, 1LL << 31, (258LL << 20),
                      (1LL << 62) - 1, 1LL << 62,
                      std::numeric_limits<std::int64_t>::max()));

}  // namespace
}  // namespace iocov::stats
