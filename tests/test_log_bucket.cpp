#include "stats/log_bucket.hpp"

#include <gtest/gtest.h>

namespace iocov::stats {
namespace {

TEST(LogBucket, ZeroIsItsOwnPartition) {
    const auto b = log_bucket_of(0);
    EXPECT_EQ(b.kind, LogBucket::Kind::Zero);
    EXPECT_EQ(bucket_label(b), "=0");
    EXPECT_EQ(bucket_lower_bound(b), 0);
    EXPECT_EQ(bucket_upper_bound(b), 0);
}

TEST(LogBucket, NegativeIsItsOwnPartition) {
    const auto b = log_bucket_of(-1);
    EXPECT_EQ(b.kind, LogBucket::Kind::Negative);
    EXPECT_EQ(bucket_label(b), "<0");
    EXPECT_EQ(log_bucket_of(-123456789), b);
}

TEST(LogBucket, PowersOfTwoStartNewBuckets) {
    for (unsigned e = 0; e < 63; ++e) {
        const auto v = std::int64_t{1} << e;
        const auto b = log_bucket_of(v);
        ASSERT_EQ(b.kind, LogBucket::Kind::Pow2);
        EXPECT_EQ(b.exponent, e) << "value " << v;
        EXPECT_EQ(bucket_lower_bound(b), v);
    }
}

TEST(LogBucket, UpperBoundIsOneBelowNextPower) {
    const auto b = log_bucket_of(1024);
    EXPECT_EQ(bucket_upper_bound(b), 2047);
}

TEST(LogBucket, ValueJustBelowBoundaryStaysInLowerBucket) {
    EXPECT_EQ(log_bucket_of(2047).exponent, 10u);
    EXPECT_EQ(log_bucket_of(2048).exponent, 11u);
}

TEST(LogBucket, PaperExampleBucket10Covers1024To2047) {
    // The paper: "x = 10 represents all write sizes from 2^10 to
    // 2^11 - 1 (or 1024-2047)".
    for (std::int64_t v : {1024, 1500, 2047}) {
        EXPECT_EQ(log_bucket_of(v).exponent, 10u) << v;
    }
}

TEST(LogBucket, The258MiBWriteLandsInBucket28) {
    // Fig. 3's annotated maximum write size.
    EXPECT_EQ(log_bucket_of(258LL << 20).exponent, 28u);
}

TEST(LogBucket, OrderingFollowsValueOrdering) {
    EXPECT_LT(log_bucket_of(-5), log_bucket_of(0));
    EXPECT_LT(log_bucket_of(0), log_bucket_of(1));
    EXPECT_LT(log_bucket_of(1), log_bucket_of(2));
    EXPECT_LT(log_bucket_of(1000), log_bucket_of(100000));
}

TEST(LogBucket, MaxInt64DoesNotOverflow) {
    const auto b = log_bucket_of(std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(b.exponent, 62u);
    EXPECT_EQ(bucket_upper_bound(b),
              std::numeric_limits<std::int64_t>::max());
}

TEST(LogBucket, SizeLabelsUseBinaryUnits) {
    EXPECT_EQ(bucket_size_label(log_bucket_of(1)), "1B");
    EXPECT_EQ(bucket_size_label(log_bucket_of(4096)), "4KiB");
    EXPECT_EQ(bucket_size_label(log_bucket_of(1 << 20)), "1MiB");
    EXPECT_EQ(bucket_size_label(log_bucket_of(0)), "0B");
}

TEST(HumanSize, FormatsFractionsAndExactUnits) {
    EXPECT_EQ(human_size(0), "0B");
    EXPECT_EQ(human_size(1536), "1.5KiB");
    EXPECT_EQ(human_size(258ULL << 20), "258MiB");
    EXPECT_EQ(human_size(1ULL << 40), "1TiB");
}

TEST(ParseBucketLabel, RoundTripsAllLabels) {
    for (std::int64_t v : {-3LL, 0LL, 1LL, 7LL, 4096LL, 1LL << 40}) {
        const auto b = log_bucket_of(v);
        const auto parsed = parse_bucket_label(bucket_label(b));
        ASSERT_TRUE(parsed.has_value()) << bucket_label(b);
        EXPECT_EQ(*parsed, b);
    }
}

TEST(ParseBucketLabel, RejectsGarbage) {
    EXPECT_FALSE(parse_bucket_label(""));
    EXPECT_FALSE(parse_bucket_label("2^"));
    EXPECT_FALSE(parse_bucket_label("2^x"));
    EXPECT_FALSE(parse_bucket_label("2^64"));
    EXPECT_FALSE(parse_bucket_label("=1"));
    EXPECT_FALSE(parse_bucket_label("2^10trailing"));
}

TEST(ParseBucketLabel, RoundTripsEveryRepresentableExponent) {
    for (unsigned e = 0; e < 63; ++e) {
        const auto label = "2^" + std::to_string(e);
        const auto parsed = parse_bucket_label(label);
        ASSERT_TRUE(parsed.has_value()) << label;
        EXPECT_EQ(parsed->kind, LogBucket::Kind::Pow2);
        EXPECT_EQ(parsed->exponent, e);
        EXPECT_EQ(bucket_label(*parsed), label);
        // Every parseable bucket must have a representable lower bound.
        EXPECT_GT(bucket_lower_bound(*parsed), 0);
    }
}

TEST(ParseBucketLabel, RejectsExponent63) {
    // No positive int64 lives in [2^63, 2^64); before the fix the parser
    // accepted this label and bucket_lower_bound computed 1 << 63
    // (signed overflow).
    EXPECT_FALSE(parse_bucket_label("2^63"));
}

TEST(LogBucket, LowerBoundSaturatesAtUnrepresentableExponent) {
    // A hand-built exponent-63 bucket must not overflow either.
    const LogBucket b{LogBucket::Kind::Pow2, 63};
    EXPECT_EQ(bucket_lower_bound(b),
              std::numeric_limits<std::int64_t>::max());
}

TEST(HumanSize, FractionComesFromFullByteCount) {
    // 1,520,500 B = 1.45 MiB.  The old remainder-only formula dropped
    // the KiB-level leftovers and printed 1.4MiB.
    EXPECT_EQ(human_size(1520500), "1.5MiB");
    EXPECT_EQ(human_size(1610612736ULL), "1.5GiB");
    EXPECT_EQ(human_size(1023), "1023B");
}

// Property sweep: every value maps into a bucket whose bounds contain it.
class LogBucketProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LogBucketProperty, BoundsContainValue) {
    const std::int64_t v = GetParam();
    const auto b = log_bucket_of(v);
    EXPECT_LE(bucket_lower_bound(b), v);
    EXPECT_GE(bucket_upper_bound(b), v);
}

INSTANTIATE_TEST_SUITE_P(
    Values, LogBucketProperty,
    ::testing::Values(std::numeric_limits<std::int64_t>::min(), -4096, -1, 0,
                      1, 2, 3, 511, 512, 513, 4095, 4096, 65535, 65536,
                      (1LL << 31) - 1, 1LL << 31, (258LL << 20),
                      (1LL << 62) - 1, 1LL << 62,
                      std::numeric_limits<std::int64_t>::max()));

}  // namespace
}  // namespace iocov::stats
