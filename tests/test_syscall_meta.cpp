// truncate/ftruncate, mkdir family, chmod family, close, chdir family,
// and the untracked extras.
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::syscall {
namespace {

using namespace iocov::abi;  // NOLINT

class MetaTest : public ::testing::Test {
  protected:
    MetaTest()
        : fs_(),
          fx_(testers::prepare_environment(fs_, "/mnt/test")),
          kernel_(fs_, &buffer_),
          root_(kernel_.make_process(1, vfs::Credentials::root())),
          user_(kernel_.make_process(2, vfs::Credentials::user(1000, 1000))) {
    }

    std::string scratch(const std::string& name) {
        return fx_.scratch + "/" + name;
    }

    vfs::InodeId ino_of(const std::string& path) {
        return fs_.resolve(path, vfs::Credentials::root()).value();
    }

    vfs::FileSystem fs_;
    testers::Fixtures fx_;
    trace::TraceBuffer buffer_;
    Kernel kernel_;
    Process root_;
    Process user_;
};

TEST_F(MetaTest, TruncateByPath) {
    const auto path = scratch("t");
    const auto fd = user_.sys_open(path.c_str(), O_CREAT | O_WRONLY, 0644);
    user_.sys_write(static_cast<int>(fd),
                    WriteSrc::pattern(1000, std::byte{1}));
    EXPECT_EQ(user_.sys_truncate(path.c_str(), 10), 0);
    EXPECT_EQ(fs_.stat(ino_of(path)).value().size, 10u);
    // Growth creates a sparse tail.
    EXPECT_EQ(user_.sys_truncate(path.c_str(), 100000), 0);
    EXPECT_EQ(fs_.stat(ino_of(path)).value().size, 100000u);
}

TEST_F(MetaTest, TruncateErrors) {
    EXPECT_EQ(user_.sys_truncate(scratch("nope").c_str(), 0),
              fail(Err::ENOENT_));
    EXPECT_EQ(user_.sys_truncate(fx_.scratch.c_str(), 0),
              fail(Err::EISDIR_));
    EXPECT_EQ(user_.sys_truncate(fx_.fifo.c_str(), 0), fail(Err::EINVAL_));
    EXPECT_EQ(user_.sys_truncate(fx_.noperm_file.c_str(), 0),
              fail(Err::EACCES_));
    EXPECT_EQ(user_.sys_truncate(fx_.plain_file.c_str(), -1),
              fail(Err::EINVAL_));
    EXPECT_EQ(user_.sys_truncate(nullptr, 0), fail(Err::EFAULT_));
    EXPECT_EQ(root_.sys_truncate(fx_.running_exe.c_str(), 0),
              fail(Err::ETXTBSY_));
    const auto huge = static_cast<std::int64_t>(
        fs_.config().max_file_size + 4096);
    EXPECT_EQ(root_.sys_truncate(fx_.plain_file.c_str(), huge),
              fail(Err::EFBIG_));
}

TEST_F(MetaTest, FtruncateRequiresWritableRegularFd) {
    const auto path = scratch("ft");
    const auto wfd = user_.sys_open(path.c_str(), O_CREAT | O_RDWR, 0644);
    user_.sys_write(static_cast<int>(wfd),
                    WriteSrc::pattern(100, std::byte{1}));
    EXPECT_EQ(user_.sys_ftruncate(static_cast<int>(wfd), 7), 0);
    EXPECT_EQ(fs_.stat(ino_of(path)).value().size, 7u);

    EXPECT_EQ(user_.sys_ftruncate(999, 0), fail(Err::EBADF_));
    EXPECT_EQ(user_.sys_ftruncate(static_cast<int>(wfd), -3),
              fail(Err::EINVAL_));
    const auto rfd = user_.sys_open(path.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_ftruncate(static_cast<int>(rfd), 0),
              fail(Err::EINVAL_));
    const auto dfd = user_.sys_open(fx_.scratch.c_str(),
                                    O_RDONLY | O_DIRECTORY);
    EXPECT_EQ(user_.sys_ftruncate(static_cast<int>(dfd), 0),
              fail(Err::EINVAL_));
}

TEST_F(MetaTest, MkdirAppliesModeAndUmask) {
    user_.set_umask(022);
    EXPECT_EQ(user_.sys_mkdir(scratch("d").c_str(), 0777), 0);
    EXPECT_EQ(fs_.find(ino_of(scratch("d")))->perms(), 0755u);
}

TEST_F(MetaTest, MkdirErrors) {
    EXPECT_EQ(user_.sys_mkdir(fx_.scratch.c_str(), 0755),
              fail(Err::EEXIST_));
    EXPECT_EQ(user_.sys_mkdir(scratch("a/b").c_str(), 0755),
              fail(Err::ENOENT_));
    EXPECT_EQ(user_.sys_mkdir((fx_.noperm_dir + "/x").c_str(), 0755),
              fail(Err::EACCES_));
    EXPECT_EQ(user_.sys_mkdir((fx_.plain_file + "/x").c_str(), 0755),
              fail(Err::ENOTDIR_));
    EXPECT_EQ(user_.sys_mkdir(nullptr, 0755), fail(Err::EFAULT_));
    EXPECT_EQ(user_.sys_mkdir("/", 0755), fail(Err::EEXIST_));
}

TEST_F(MetaTest, MkdiratResolvesThroughDfd) {
    const auto dfd = user_.sys_open(fx_.scratch.c_str(),
                                    O_RDONLY | O_DIRECTORY);
    EXPECT_EQ(user_.sys_mkdirat(static_cast<int>(dfd), "viadfd", 0755), 0);
    EXPECT_TRUE(fs_.resolve(scratch("viadfd"),
                            vfs::Credentials::root()).ok());
    EXPECT_EQ(user_.sys_mkdirat(999, "x", 0755), fail(Err::EBADF_));
}

TEST_F(MetaTest, ChmodFamily) {
    const auto path = scratch("c");
    user_.sys_open(path.c_str(), O_CREAT | O_WRONLY, 0644);
    EXPECT_EQ(user_.sys_chmod(path.c_str(), 0600), 0);
    EXPECT_EQ(fs_.find(ino_of(path))->perms(), 0600u);

    const auto fd = user_.sys_open(path.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_fchmod(static_cast<int>(fd), 0640), 0);
    EXPECT_EQ(fs_.find(ino_of(path))->perms(), 0640u);
    EXPECT_EQ(user_.sys_fchmod(999, 0640), fail(Err::EBADF_));

    EXPECT_EQ(user_.sys_fchmodat(AT_FDCWD, path.c_str(), 0600, 0), 0);
    EXPECT_EQ(user_.sys_fchmodat(AT_FDCWD, path.c_str(), 0600,
                                 AT_SYMLINK_NOFOLLOW),
              fail(Err::EOPNOTSUPP_));
    EXPECT_EQ(user_.sys_fchmodat(AT_FDCWD, path.c_str(), 0600, 0xffff),
              fail(Err::EINVAL_));

    // Non-owner cannot chmod.
    EXPECT_EQ(user_.sys_chmod(fx_.plain_file.c_str(), 0600),
              fail(Err::EPERM_));
    EXPECT_EQ(user_.sys_chmod(scratch("missing").c_str(), 0600),
              fail(Err::ENOENT_));
}

TEST_F(MetaTest, CloseSemantics) {
    const auto fd = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_close(static_cast<int>(fd)), 0);
    EXPECT_EQ(user_.sys_close(static_cast<int>(fd)), fail(Err::EBADF_));
    EXPECT_EQ(user_.sys_close(-1), fail(Err::EBADF_));
    EXPECT_EQ(user_.sys_close(0), fail(Err::EBADF_));  // stdio unmodeled
}

TEST_F(MetaTest, ChdirAffectsRelativeResolution) {
    EXPECT_EQ(user_.sys_chdir(fx_.scratch.c_str()), 0);
    EXPECT_EQ(user_.sys_mkdir("reldir", 0755), 0);
    EXPECT_TRUE(fs_.resolve(scratch("reldir"),
                            vfs::Credentials::root()).ok());
    EXPECT_EQ(user_.sys_chdir("reldir"), 0);
    const auto fd = user_.sys_open("../reldir", O_RDONLY | O_DIRECTORY);
    EXPECT_GE(fd, 0);
}

TEST_F(MetaTest, ChdirErrors) {
    EXPECT_EQ(user_.sys_chdir(scratch("void").c_str()),
              fail(Err::ENOENT_));
    EXPECT_EQ(user_.sys_chdir(fx_.plain_file.c_str()),
              fail(Err::ENOTDIR_));
    EXPECT_EQ(user_.sys_chdir(fx_.noperm_dir.c_str()),
              fail(Err::EACCES_));
    EXPECT_EQ(user_.sys_chdir(nullptr), fail(Err::EFAULT_));
}

TEST_F(MetaTest, FchdirSemantics) {
    const auto dfd = user_.sys_open(fx_.scratch.c_str(),
                                    O_RDONLY | O_DIRECTORY);
    EXPECT_EQ(user_.sys_fchdir(static_cast<int>(dfd)), 0);
    EXPECT_EQ(user_.sys_mkdir("after_fchdir", 0755), 0);
    EXPECT_TRUE(fs_.resolve(scratch("after_fchdir"),
                            vfs::Credentials::root()).ok());
    EXPECT_EQ(user_.sys_fchdir(999), fail(Err::EBADF_));
    const auto ffd = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_fchdir(static_cast<int>(ffd)),
              fail(Err::ENOTDIR_));
}

TEST_F(MetaTest, UntrackedExtrasBehave) {
    const auto fd = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_fsync(static_cast<int>(fd)), 0);
    EXPECT_EQ(user_.sys_fdatasync(static_cast<int>(fd)), 0);
    EXPECT_EQ(user_.sys_fsync(999), fail(Err::EBADF_));
    EXPECT_EQ(user_.sys_sync(), 0);

    const auto p = scratch("victim");
    user_.sys_open(p.c_str(), O_CREAT | O_WRONLY, 0644);
    EXPECT_EQ(user_.sys_unlink(p.c_str()), 0);
    EXPECT_EQ(user_.sys_unlink(p.c_str()), fail(Err::ENOENT_));

    EXPECT_EQ(user_.sys_mkdir(scratch("dd").c_str(), 0755), 0);
    EXPECT_EQ(user_.sys_rmdir(scratch("dd").c_str()), 0);

    user_.sys_open(scratch("r1").c_str(), O_CREAT | O_WRONLY, 0644);
    EXPECT_EQ(user_.sys_rename(scratch("r1").c_str(),
                               scratch("r2").c_str()),
              0);
    EXPECT_TRUE(fs_.resolve(scratch("r2"), vfs::Credentials::root()).ok());

    EXPECT_EQ(user_.sys_symlink("/mnt/test/scratch/r2",
                                scratch("sym").c_str()),
              0);
    EXPECT_EQ(user_.sys_link(scratch("r2").c_str(),
                             scratch("hard").c_str()),
              0);
}

TEST_F(MetaTest, EveryCallEmitsTraceEvents) {
    buffer_.clear();
    user_.sys_mkdir(scratch("tr").c_str(), 0755);
    user_.sys_chdir(fx_.scratch.c_str());
    user_.sys_close(-1);
    ASSERT_EQ(buffer_.size(), 3u);
    EXPECT_EQ(buffer_.events()[0].syscall, "mkdir");
    EXPECT_EQ(buffer_.events()[1].syscall, "chdir");
    EXPECT_EQ(buffer_.events()[2].syscall, "close");
    EXPECT_EQ(buffer_.events()[2].ret, fail(Err::EBADF_));
    // Sequence numbers are monotonic.
    EXPECT_LT(buffer_.events()[0].seq, buffer_.events()[1].seq);
    EXPECT_LT(buffer_.events()[1].seq, buffer_.events()[2].seq);
}

TEST_F(MetaTest, ProcessExitReleasesSystemFileTable) {
    auto limits = kernel_.limits();
    limits.max_open_files = 2;
    kernel_.set_limits(limits);
    {
        auto tmp = kernel_.make_process(7, vfs::Credentials::root());
        ASSERT_GE(tmp.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
        ASSERT_GE(tmp.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
        EXPECT_EQ(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY),
                  fail(Err::ENFILE_));
    }
    // tmp's destructor released its two descriptions.
    EXPECT_GE(user_.sys_open(fx_.plain_file.c_str(), O_RDONLY), 0);
}

TEST_F(MetaTest, StatFamily) {
    vfs::Stat st{};
    EXPECT_EQ(user_.sys_stat(fx_.plain_file.c_str(), &st), 0);
    EXPECT_TRUE(abi::is_reg(st.mode));
    EXPECT_EQ(st.size, 4096u);
    EXPECT_EQ(user_.sys_stat(scratch("absent").c_str(), &st),
              fail(Err::ENOENT_));
    EXPECT_EQ(user_.sys_stat(nullptr, &st), fail(Err::EFAULT_));

    // lstat sees the symlink itself; stat follows it.
    user_.sys_symlink(fx_.plain_file.c_str(), scratch("sl").c_str());
    EXPECT_EQ(user_.sys_lstat(scratch("sl").c_str(), &st), 0);
    EXPECT_TRUE(abi::is_lnk(st.mode));
    EXPECT_EQ(user_.sys_stat(scratch("sl").c_str(), &st), 0);
    EXPECT_TRUE(abi::is_reg(st.mode));

    const auto fd = user_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    EXPECT_EQ(user_.sys_fstat(static_cast<int>(fd), &st), 0);
    EXPECT_EQ(st.size, 4096u);
    EXPECT_EQ(user_.sys_fstat(999, &st), fail(Err::EBADF_));
}

}  // namespace
}  // namespace iocov::syscall
