#include <gtest/gtest.h>

#include "abi/errno.hpp"
#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "abi/stat_mode.hpp"

namespace iocov::abi {
namespace {

TEST(Errno, NamesRoundTrip) {
    for (Err e : all_errors()) {
        const auto name = err_name(e);
        ASSERT_FALSE(name.empty());
        auto back = err_from_name(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, e);
    }
}

TEST(Errno, ValuesMatchLinux) {
    EXPECT_EQ(static_cast<int>(Err::ENOENT_), 2);
    EXPECT_EQ(static_cast<int>(Err::EEXIST_), 17);
    EXPECT_EQ(static_cast<int>(Err::EINVAL_), 22);
    EXPECT_EQ(static_cast<int>(Err::ENOSPC_), 28);
    EXPECT_EQ(static_cast<int>(Err::ELOOP_), 40);
    EXPECT_EQ(static_cast<int>(Err::EDQUOT_), 122);
}

TEST(Errno, KernelReturnConvention) {
    EXPECT_EQ(fail(Err::ENOENT_), -2);
    EXPECT_TRUE(is_ok(0));
    EXPECT_TRUE(is_ok(42));
    EXPECT_FALSE(is_ok(-2));
    EXPECT_EQ(err_of(-2), Err::ENOENT_);
}

TEST(Errno, OpenManpageErrorsMatchFig4Axis) {
    const auto& errs = open_manpage_errors();
    // 27 error codes, reverse-alphabetical, EXDEV first, E2BIG last.
    EXPECT_EQ(errs.size(), 27u);
    EXPECT_EQ(errs.front(), Err::EXDEV_);
    EXPECT_EQ(errs.back(), Err::E2BIG_);
    for (std::size_t i = 1; i < errs.size(); ++i)
        EXPECT_GT(err_name(errs[i - 1]), err_name(errs[i]))
            << "not reverse-alphabetical at " << i;
}

TEST(Errno, UnknownValueGetsPlaceholderName) {
    EXPECT_EQ(err_name(999), "E?999");
    EXPECT_FALSE(err_from_name("EWHAT").has_value());
}

TEST(OpenFlags, TableHasFig2Axis) {
    // 20 partitions: 3 access modes + 17 OR-able flags.
    EXPECT_EQ(open_flag_table().size(), 20u);
    EXPECT_STREQ(open_flag_table().front().name, "O_RDONLY");
}

TEST(OpenFlags, DecomposeLoneAccessModes) {
    EXPECT_EQ(decompose_open_flags(O_RDONLY),
              std::vector<std::string>{"O_RDONLY"});
    EXPECT_EQ(decompose_open_flags(O_WRONLY),
              std::vector<std::string>{"O_WRONLY"});
    EXPECT_EQ(decompose_open_flags(O_RDWR),
              std::vector<std::string>{"O_RDWR"});
}

TEST(OpenFlags, AccessModeCountsAsOneFlag) {
    EXPECT_EQ(open_flag_cardinality(O_RDONLY), 1u);
    EXPECT_EQ(open_flag_cardinality(O_WRONLY | O_CREAT | O_TRUNC), 3u);
    EXPECT_EQ(open_flag_cardinality(O_RDONLY | O_CREAT | O_EXCL | O_TRUNC |
                                    O_NONBLOCK | O_CLOEXEC),
              6u);
}

TEST(OpenFlags, OSyncAbsorbsODsync) {
    // O_SYNC includes the O_DSYNC bit; a flags word with full O_SYNC
    // must not double-report O_DSYNC.
    const auto labels = decompose_open_flags(O_RDWR | O_SYNC);
    EXPECT_EQ(labels, (std::vector<std::string>{"O_RDWR", "O_SYNC"}));
    const auto dsync_only = decompose_open_flags(O_RDWR | O_DSYNC);
    EXPECT_EQ(dsync_only, (std::vector<std::string>{"O_RDWR", "O_DSYNC"}));
}

TEST(OpenFlags, OTmpfileAbsorbsODirectory) {
    const auto labels = decompose_open_flags(O_WRONLY | O_TMPFILE);
    EXPECT_EQ(labels, (std::vector<std::string>{"O_WRONLY", "O_TMPFILE"}));
}

TEST(OpenFlags, InvalidAccessMode3ReportsAsRdwr) {
    const auto labels = decompose_open_flags(O_ACCMODE);
    EXPECT_EQ(labels, (std::vector<std::string>{"O_RDWR"}));
}

TEST(OpenFlags, ToStringJoinsWithPipe) {
    EXPECT_EQ(open_flags_to_string(O_WRONLY | O_CREAT | O_TRUNC),
              "O_WRONLY|O_CREAT|O_TRUNC");
}

TEST(SeekWhence, NamesAndValues) {
    EXPECT_EQ(seek_whence_values().size(), 5u);
    EXPECT_EQ(*seek_whence_name(SEEK_SET_), "SEEK_SET");
    EXPECT_EQ(*seek_whence_name(SEEK_HOLE_), "SEEK_HOLE");
    EXPECT_FALSE(seek_whence_name(99).has_value());
    EXPECT_FALSE(seek_whence_name(-1).has_value());
}

TEST(StatMode, TypePredicates) {
    EXPECT_TRUE(is_reg(S_IFREG | 0644));
    EXPECT_TRUE(is_dir(S_IFDIR | 0755));
    EXPECT_TRUE(is_lnk(S_IFLNK | 0777));
    EXPECT_FALSE(is_reg(S_IFDIR | 0644));
}

TEST(StatMode, OctalRendering) {
    EXPECT_EQ(mode_to_octal(0644), "0644");
    EXPECT_EQ(mode_to_octal(S_IFREG | 04755), "4755");
    EXPECT_EQ(mode_to_octal(0), "0000");
}

}  // namespace
}  // namespace iocov::abi
