// End-to-end integration: kernel -> trace -> (text round trip) ->
// filter -> analyzer, live vs offline equivalence.
#include <gtest/gtest.h>

#include <sstream>

#include "abi/fcntl.hpp"
#include "core/iocov.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "trace/text_format.hpp"
#include "vfs/filesystem.hpp"

namespace iocov {
namespace {

using namespace iocov::abi;  // NOLINT

class PipelineTest : public ::testing::Test {
  protected:
    PipelineTest()
        : fs_(),
          fx_(testers::prepare_environment(fs_, "/mnt/test")) {}

    /// A small but representative workload.
    void run_workload(syscall::Kernel& kernel) {
        auto proc =
            kernel.make_process(1, vfs::Credentials::user(1000, 1000));
        const auto fd = proc.sys_open(
            (fx_.scratch + "/w").c_str(), O_CREAT | O_WRONLY, 0644);
        proc.sys_write(static_cast<int>(fd),
                       syscall::WriteSrc::pattern(4096, std::byte{1}));
        proc.sys_write(static_cast<int>(fd),
                       syscall::WriteSrc::pattern(0, std::byte{1}));
        proc.sys_close(static_cast<int>(fd));
        proc.sys_open((fx_.scratch + "/missing").c_str(), O_RDONLY);
        proc.sys_mkdir((fx_.scratch + "/d").c_str(), 0755);
        // Out-of-scope noise the filter must drop.
        proc.sys_open("/etc/passwd", O_RDONLY);
        proc.sys_mkdir("/tmp/outside", 0777);
    }

    vfs::FileSystem fs_;
    testers::Fixtures fx_;
};

TEST_F(PipelineTest, LiveAnalysisProducesExpectedCoverage) {
    core::IOCov iocov;
    syscall::Kernel kernel(fs_, &iocov.live_sink());
    run_workload(kernel);

    const auto& r = iocov.report();
    const auto* flags = r.find_input("open", "flags");
    EXPECT_EQ(flags->hist.count("O_CREAT"), 1u);
    EXPECT_EQ(flags->hist.count("O_RDONLY"), 1u);  // only the in-scope one
    const auto* wc = r.find_input("write", "count");
    EXPECT_EQ(wc->hist.count("2^12"), 1u);
    EXPECT_EQ(wc->hist.count("=0"), 1u);
    const auto* oo = r.find_output("open");
    EXPECT_EQ(oo->hist.count("ENOENT"), 1u);
    // /etc/passwd and /tmp noise was filtered.
    EXPECT_GE(iocov.events_filtered_out(), 2u);
    const auto* mo = r.find_output("mkdir");
    EXPECT_EQ(mo->hist.count("OK"), 1u);
}

TEST_F(PipelineTest, OfflineTextTraceMatchesLiveAnalysis) {
    // Live path.
    core::IOCov live;
    {
        vfs::FileSystem fs2;
        auto fx2 = testers::prepare_environment(fs2, "/mnt/test");
        (void)fx2;
        syscall::Kernel kernel(fs2, &live.live_sink());
        run_workload(kernel);
    }

    // Offline path: record to a text "file", parse it back, analyze.
    std::stringstream text;
    {
        vfs::FileSystem fs2;
        auto fx2 = testers::prepare_environment(fs2, "/mnt/test");
        (void)fx2;
        trace::TextSink sink(text);
        syscall::Kernel kernel(fs2, &sink);
        run_workload(kernel);
    }
    core::IOCov offline;
    const auto dropped = offline.consume_text(text);
    EXPECT_EQ(dropped, 0u);

    // The two reports must be identical.
    const auto& a = live.report();
    const auto& b = offline.report();
    ASSERT_EQ(a.inputs.size(), b.inputs.size());
    for (std::size_t i = 0; i < a.inputs.size(); ++i) {
        EXPECT_EQ(a.inputs[i].hist, b.inputs[i].hist)
            << a.inputs[i].base << "/" << a.inputs[i].key;
    }
    for (std::size_t i = 0; i < a.outputs.size(); ++i)
        EXPECT_EQ(a.outputs[i].hist, b.outputs[i].hist)
            << a.outputs[i].base;
    EXPECT_EQ(a.events_tracked, b.events_tracked);
}

TEST_F(PipelineTest, CustomMountPointConfiguration) {
    // "The only setting that needs to be adjusted ... is the regular
    // expression used to identify the tester's mount points."
    vfs::FileSystem fs2;
    auto fx2 = testers::prepare_environment(fs2, "/media/sut");
    core::IOCov iocov(trace::FilterConfig::mount_point("/media/sut"));
    syscall::Kernel kernel(fs2, &iocov.live_sink());
    auto proc = kernel.make_process(1, vfs::Credentials::user(1000, 1000));
    proc.sys_open((fx2.scratch + "/f").c_str(), O_CREAT | O_WRONLY, 0644);
    proc.sys_open("/mnt/test/elsewhere", O_RDONLY);
    EXPECT_EQ(iocov.report().find_output("open")->hist.count("OK"), 1u);
    EXPECT_EQ(iocov.events_filtered_out(), 1u);
}

}  // namespace
}  // namespace iocov
