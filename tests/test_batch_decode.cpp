// Batched IOCT decode: ISA equivalence (scalar vs SWAR vs BMI2),
// round-trips through EventBatch + EventScratch materialization,
// diagnostics parity with the scalar reference on truncated and
// corrupted input, and the zero-allocation steady state.
#include "trace/binary_format.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <string>
#include <vector>

#include "exec/alloc_hook.hpp"

namespace iocov::trace {
namespace {

const char* const kSyscallNames[] = {"open",  "openat", "read",  "write",
                                     "lseek", "close",  "chdir", "mkdir"};

/// Deterministic random event spanning the varint value space: 1-byte
/// varints (the fast path), mid-size values (the SWAR wide path), and
/// 9/10-byte extremes (the scalar fallback).
TraceEvent random_event(std::mt19937_64& rng) {
    TraceEvent ev;
    ev.seq = rng() % 3 ? rng() % 100 : rng();
    ev.pid = static_cast<std::uint32_t>(rng() % 200);
    ev.tid = ev.pid;
    ev.syscall = kSyscallNames[rng() % std::size(kSyscallNames)];
    ev.ret = rng() % 3 ? static_cast<std::int64_t>(rng() % 128) - 64
                       : static_cast<std::int64_t>(rng());
    const std::size_t argc = rng() % 5;
    for (std::size_t i = 0; i < argc; ++i) {
        Arg arg;
        arg.name = "a" + std::to_string(rng() % 6);
        switch (rng() % 6) {
            case 0: arg.value = std::int64_t{-1}; break;
            case 1:
                arg.value = std::numeric_limits<std::int64_t>::min();
                break;
            case 2:
                arg.value = std::numeric_limits<std::uint64_t>::max();
                break;
            case 3: arg.value = std::uint64_t{rng() % 5000}; break;
            case 4: arg.value = std::string(); break;
            default:
                arg.value = std::string("/mnt/test/p") +
                            std::to_string(rng() % 100);
                break;
        }
        ev.args.push_back(std::move(arg));
    }
    return ev;
}

std::vector<TraceEvent> random_events(std::uint64_t seed, int n) {
    std::mt19937_64 rng(seed);
    std::vector<TraceEvent> events;
    for (int i = 0; i < n; ++i) events.push_back(random_event(rng));
    return events;
}

std::vector<DecodeIsa> available_isas() {
    std::vector<DecodeIsa> isas;
    for (const auto isa :
         {DecodeIsa::Scalar, DecodeIsa::Swar, DecodeIsa::Bmi2})
        if (decode_isa_available(isa)) isas.push_back(isa);
    return isas;
}

/// Scan + chunked batched decode + materialization, pinned to one ISA.
/// The odd chunk size forces several batch boundaries in every test.
std::vector<TraceEvent> batch_decode_all(std::string_view data,
                                         DecodeIsa isa,
                                         std::size_t* dropped = nullptr,
                                         ParseDiagnostics* diags = nullptr) {
    constexpr std::size_t kChunk = 97;
    const auto scan = scan_ioct(data);
    std::vector<TraceEvent> out;
    EventBatch batch;
    EventScratch scratch;
    for (std::size_t i = 0; i < scan.events.size(); i += kChunk) {
        const std::size_t n = std::min(kChunk, scan.events.size() - i);
        batch.clear();
        const auto rows = decode_batch_with(isa, data, scan.strings,
                                            scan.events.data() + i, n,
                                            batch, dropped, diags);
        for (std::size_t r = 0; r < rows; ++r)
            out.push_back(scratch.materialize(batch, r, scan.strings));
    }
    return out;
}

void expect_diags_equal(const ParseDiagnostics& a, const ParseDiagnostics& b,
                        const char* what) {
    EXPECT_EQ(a.total(), b.total()) << what;
    ASSERT_EQ(a.entries().size(), b.entries().size()) << what;
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].line, b.entries()[i].line) << what;
        EXPECT_EQ(a.entries()[i].offset, b.entries()[i].offset) << what;
        EXPECT_EQ(a.entries()[i].reason, b.entries()[i].reason) << what;
        EXPECT_EQ(a.entries()[i].excerpt, b.entries()[i].excerpt) << what;
    }
}

TEST(BatchDecode, ScalarIsAlwaysAvailable) {
    EXPECT_TRUE(decode_isa_available(DecodeIsa::Scalar));
    EXPECT_TRUE(decode_isa_available(active_decode_isa()));
    EXPECT_STREQ(decode_isa_name(DecodeIsa::Scalar), "scalar");
}

TEST(BatchDecode, RoundTripsRandomizedEventsOnEveryIsa) {
    const auto events = random_events(20260808, 2000);
    const auto data = encode_trace(events);
    for (const auto isa : available_isas()) {
        // decode_batch accumulates into *dropped (callers chunk), so
        // start from zero — unlike decode_trace, which assigns.
        std::size_t dropped = 0;
        const auto decoded = batch_decode_all(data, isa, &dropped);
        EXPECT_EQ(dropped, 0u) << decode_isa_name(isa);
        ASSERT_EQ(decoded.size(), events.size()) << decode_isa_name(isa);
        for (std::size_t i = 0; i < events.size(); ++i)
            ASSERT_EQ(decoded[i], events[i])
                << decode_isa_name(isa) << " event " << i;
    }
}

TEST(BatchDecode, MatchesDecodeTraceOnCleanInput) {
    const auto data = encode_trace(random_events(42, 500));
    std::size_t ref_dropped = 1, batch_dropped = 0;
    const auto reference = decode_trace(data, &ref_dropped);
    const auto batched =
        batch_decode_all(data, active_decode_isa(), &batch_dropped);
    EXPECT_EQ(batch_dropped, ref_dropped);
    EXPECT_EQ(batched, reference);
}

TEST(BatchDecode, IsasAgreeOnTruncatedTails) {
    const auto data = encode_trace(random_events(7, 200));
    // Chop at every offset across the last few records plus a spread of
    // earlier cuts: every truncation must decode identically (events,
    // drop counts, diagnostics) on every ISA.
    std::vector<std::size_t> cuts;
    for (std::size_t cut = data.size() - 120; cut < data.size(); ++cut)
        cuts.push_back(cut);
    for (std::size_t cut = 16; cut < data.size(); cut += 997)
        cuts.push_back(cut);
    for (const std::size_t cut : cuts) {
        const std::string torn = data.substr(0, cut);
        std::size_t scalar_dropped = 0;
        ParseDiagnostics scalar_diags;
        const auto scalar = batch_decode_all(torn, DecodeIsa::Scalar,
                                             &scalar_dropped, &scalar_diags);
        for (const auto isa : available_isas()) {
            if (isa == DecodeIsa::Scalar) continue;
            std::size_t dropped = 0;
            ParseDiagnostics diags;
            const auto fast = batch_decode_all(torn, isa, &dropped, &diags);
            ASSERT_EQ(fast, scalar)
                << decode_isa_name(isa) << " cut " << cut;
            EXPECT_EQ(dropped, scalar_dropped)
                << decode_isa_name(isa) << " cut " << cut;
            expect_diags_equal(diags, scalar_diags, decode_isa_name(isa));
        }
    }
}

TEST(BatchDecode, IsasAgreeUnderRandomCorruption) {
    const auto clean = encode_trace(random_events(11, 300));
    std::mt19937_64 rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        std::string data = clean;
        // 1-4 random byte flips past the header: torn varints, bad type
        // bytes, out-of-range ids, argc explosions...
        const int flips = 1 + static_cast<int>(rng() % 4);
        for (int f = 0; f < flips; ++f)
            data[kIoctHeaderSize + rng() % (data.size() - kIoctHeaderSize)] =
                static_cast<char>(rng() & 0xff);
        std::size_t scalar_dropped = 0;
        ParseDiagnostics scalar_diags;
        const auto scalar = batch_decode_all(data, DecodeIsa::Scalar,
                                             &scalar_dropped, &scalar_diags);
        for (const auto isa : available_isas()) {
            if (isa == DecodeIsa::Scalar) continue;
            std::size_t dropped = 0;
            ParseDiagnostics diags;
            const auto fast = batch_decode_all(data, isa, &dropped, &diags);
            ASSERT_EQ(fast, scalar)
                << decode_isa_name(isa) << " trial " << trial;
            EXPECT_EQ(dropped, scalar_dropped)
                << decode_isa_name(isa) << " trial " << trial;
            expect_diags_equal(diags, scalar_diags, decode_isa_name(isa));
        }
    }
}

TEST(BatchDecode, ParityWithPerRecordDecodeEventUnderCorruption) {
    const auto clean = encode_trace(random_events(13, 300));
    std::mt19937_64 rng(5);
    for (int trial = 0; trial < 100; ++trial) {
        std::string data = clean;
        for (int f = 0; f < 3; ++f)
            data[kIoctHeaderSize + rng() % (data.size() - kIoctHeaderSize)] =
                static_cast<char>(rng() & 0xff);
        const auto scan = scan_ioct(data);
        // Reference: the one-record-at-a-time scalar decoder.
        std::vector<TraceEvent> reference;
        TraceEvent scratch;
        for (const auto& ref : scan.events)
            if (decode_event(std::string_view(data).substr(ref.offset,
                                                           ref.length),
                             scan.strings, scratch))
                reference.push_back(scratch);
        std::size_t dropped = 0;
        const auto batched =
            batch_decode_all(data, active_decode_isa(), &dropped);
        ASSERT_EQ(batched, reference) << "trial " << trial;
        EXPECT_EQ(batched.size() + dropped, scan.events.size())
            << "trial " << trial;
    }
}

TEST(BatchDecode, SteadyStateDecodeAndMaterializeIsAllocationFree) {
    if (!exec::has_allocation_counting())
        GTEST_SKIP() << "allocation hook compiled out (sanitizer build)";
    const auto data = encode_trace(random_events(21, 1000));
    const auto scan = scan_ioct(data);
    constexpr std::size_t kChunk = 512;
    EventBatch batch;
    EventScratch scratch;
    std::uint64_t sum = 0;
    const auto pass = [&] {
        for (std::size_t i = 0; i < scan.events.size(); i += kChunk) {
            const std::size_t n = std::min(kChunk, scan.events.size() - i);
            batch.clear();
            const auto rows = decode_batch(data, scan.strings,
                                           scan.events.data() + i, n, batch);
            for (std::size_t r = 0; r < rows; ++r)
                sum += scratch.materialize(batch, r, scan.strings).seq;
        }
    };
    pass();  // warm: batch high-water mark, scratch string capacities
    pass();
    const auto before = exec::thread_allocation_count();
    pass();
    EXPECT_EQ(exec::thread_allocation_count() - before, 0u);
    EXPECT_NE(sum, 0u);
}

}  // namespace
}  // namespace iocov::trace
