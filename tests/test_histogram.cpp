#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace iocov::stats {
namespace {

TEST(PartitionHistogram, StartsEmpty) {
    PartitionHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.coverage_fraction(), 0.0);
    EXPECT_FALSE(h.max_row().has_value());
}

TEST(PartitionHistogram, DeclaredPartitionsShowAsUntested) {
    auto h = PartitionHistogram::with_partitions({"a", "b", "c"});
    EXPECT_EQ(h.partition_count(), 3u);
    EXPECT_EQ(h.untested().size(), 3u);
    h.add("b");
    EXPECT_EQ(h.untested(), (std::vector<std::string>{"a", "c"}));
    EXPECT_EQ(h.tested(), (std::vector<std::string>{"b"}));
}

TEST(PartitionHistogram, WithPartitionsDeduplicates) {
    auto h = PartitionHistogram::with_partitions({"a", "a", "b"});
    EXPECT_EQ(h.partition_count(), 2u);
}

TEST(PartitionHistogram, AddCreatesUndeclaredPartitions) {
    auto h = PartitionHistogram::with_partitions({"a"});
    h.add("dynamic", 5);
    EXPECT_EQ(h.count("dynamic"), 5u);
    EXPECT_EQ(h.partition_count(), 2u);
}

TEST(PartitionHistogram, PreservesDeclarationOrder) {
    auto h = PartitionHistogram::with_partitions({"z", "m", "a"});
    h.add("m");
    h.add("extra");
    ASSERT_EQ(h.rows().size(), 4u);
    EXPECT_EQ(h.rows()[0].label, "z");
    EXPECT_EQ(h.rows()[1].label, "m");
    EXPECT_EQ(h.rows()[2].label, "a");
    EXPECT_EQ(h.rows()[3].label, "extra");
}

TEST(PartitionHistogram, CountsAccumulate) {
    PartitionHistogram h;
    h.add("x");
    h.add("x", 9);
    EXPECT_EQ(h.count("x"), 10u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(PartitionHistogram, CoverageFractionCountsNonzeroPartitions) {
    auto h = PartitionHistogram::with_partitions({"a", "b", "c", "d"});
    h.add("a");
    h.add("b", 100);
    EXPECT_DOUBLE_EQ(h.coverage_fraction(), 0.5);
}

TEST(PartitionHistogram, MergeUnionsLabelsAndAddsCounts) {
    auto a = PartitionHistogram::with_partitions({"x", "y"});
    a.add("x", 3);
    auto b = PartitionHistogram::with_partitions({"y", "z"});
    b.add("y", 2);
    a.merge(b);
    EXPECT_EQ(a.count("x"), 3u);
    EXPECT_EQ(a.count("y"), 2u);
    EXPECT_EQ(a.count("z"), 0u);
    EXPECT_TRUE(a.has_partition("z"));  // declared-but-untested survives
}

TEST(PartitionHistogram, MergePreservesZeroDeclarations) {
    auto a = PartitionHistogram::with_partitions({"x"});
    PartitionHistogram b;
    b.add("y", 7);
    a.merge(b);
    EXPECT_EQ(a.untested(), std::vector<std::string>{"x"});
    EXPECT_EQ(a.count("y"), 7u);
}

TEST(PartitionHistogram, MaxRowFindsHeaviestPartition) {
    PartitionHistogram h;
    h.add("small", 10);
    h.add("big", 1000);
    h.add("mid", 100);
    ASSERT_TRUE(h.max_row());
    EXPECT_EQ(h.max_row()->label, "big");
    EXPECT_EQ(h.max_row()->count, 1000u);
}

TEST(PartitionHistogram, LookupOfUnknownLabelIsZeroNotError) {
    PartitionHistogram h;
    EXPECT_EQ(h.count("nope"), 0u);
    EXPECT_FALSE(h.has_partition("nope"));
}

// Canonical row order: dynamic labels sit sorted after the declared
// block, so the rows are a function of the label *set*, never of the
// order add() happened to encounter them.  This is what makes a merge
// of per-shard histograms bit-identical to the serial histogram.
TEST(PartitionHistogram, DynamicLabelsKeepSortedOrderRegardlessOfArrival) {
    auto h = PartitionHistogram::with_partitions({"z", "m"});
    h.add("delta");
    h.add("alpha");
    h.add("charlie");
    ASSERT_EQ(h.rows().size(), 5u);
    EXPECT_EQ(h.rows()[0].label, "z");      // declared block untouched
    EXPECT_EQ(h.rows()[1].label, "m");
    EXPECT_EQ(h.rows()[2].label, "alpha");  // dynamic tail sorted
    EXPECT_EQ(h.rows()[3].label, "charlie");
    EXPECT_EQ(h.rows()[4].label, "delta");
}

TEST(PartitionHistogram, RowOrderIsAFunctionOfTheLabelSet) {
    PartitionHistogram a, b;
    for (const char* l : {"x", "b", "q", "a"}) a.add(l);
    for (const char* l : {"a", "q", "b", "x"}) b.add(l);
    EXPECT_EQ(a, b);
    for (std::size_t i = 0; i < a.rows().size(); ++i)
        EXPECT_EQ(a.rows()[i].label, b.rows()[i].label);
}

TEST(PartitionHistogram, DeclareAppendsToDeclaredBlock) {
    // declare() reproduces a saved histogram's exact row order on load:
    // later declares go after earlier ones, before nothing is sorted.
    PartitionHistogram h;
    h.declare("z");
    h.declare("a");
    h.declare("m");
    h.add("k", 3);  // dynamic, sorts into the (single-element) tail
    ASSERT_EQ(h.rows().size(), 4u);
    EXPECT_EQ(h.rows()[0].label, "z");
    EXPECT_EQ(h.rows()[1].label, "a");
    EXPECT_EQ(h.rows()[2].label, "m");
    EXPECT_EQ(h.rows()[3].label, "k");
}

TEST(PartitionHistogram, MergeOrderCannotChangeTheResult) {
    const std::vector<std::string> declared = {"O_RDONLY", "O_WRONLY"};
    auto serial = PartitionHistogram::with_partitions(declared);
    serial.add("O_SYNC", 2);
    serial.add("O_APPEND", 1);
    serial.add("O_RDONLY", 5);

    auto shard1 = PartitionHistogram::with_partitions(declared);
    shard1.add("O_SYNC", 2);
    auto shard2 = PartitionHistogram::with_partitions(declared);
    shard2.add("O_APPEND", 1);
    shard2.add("O_RDONLY", 5);

    auto m12 = PartitionHistogram::with_partitions(declared);
    m12.merge(shard1);
    m12.merge(shard2);
    auto m21 = PartitionHistogram::with_partitions(declared);
    m21.merge(shard2);
    m21.merge(shard1);
    EXPECT_EQ(m12, serial);
    EXPECT_EQ(m21, serial);
}

}  // namespace
}  // namespace iocov::stats
