#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace iocov::stats {
namespace {

TEST(PartitionHistogram, StartsEmpty) {
    PartitionHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.coverage_fraction(), 0.0);
    EXPECT_FALSE(h.max_row().has_value());
}

TEST(PartitionHistogram, DeclaredPartitionsShowAsUntested) {
    auto h = PartitionHistogram::with_partitions({"a", "b", "c"});
    EXPECT_EQ(h.partition_count(), 3u);
    EXPECT_EQ(h.untested().size(), 3u);
    h.add("b");
    EXPECT_EQ(h.untested(), (std::vector<std::string>{"a", "c"}));
    EXPECT_EQ(h.tested(), (std::vector<std::string>{"b"}));
}

TEST(PartitionHistogram, WithPartitionsDeduplicates) {
    auto h = PartitionHistogram::with_partitions({"a", "a", "b"});
    EXPECT_EQ(h.partition_count(), 2u);
}

TEST(PartitionHistogram, AddCreatesUndeclaredPartitions) {
    auto h = PartitionHistogram::with_partitions({"a"});
    h.add("dynamic", 5);
    EXPECT_EQ(h.count("dynamic"), 5u);
    EXPECT_EQ(h.partition_count(), 2u);
}

TEST(PartitionHistogram, PreservesDeclarationOrder) {
    auto h = PartitionHistogram::with_partitions({"z", "m", "a"});
    h.add("m");
    h.add("extra");
    ASSERT_EQ(h.rows().size(), 4u);
    EXPECT_EQ(h.rows()[0].label, "z");
    EXPECT_EQ(h.rows()[1].label, "m");
    EXPECT_EQ(h.rows()[2].label, "a");
    EXPECT_EQ(h.rows()[3].label, "extra");
}

TEST(PartitionHistogram, CountsAccumulate) {
    PartitionHistogram h;
    h.add("x");
    h.add("x", 9);
    EXPECT_EQ(h.count("x"), 10u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(PartitionHistogram, CoverageFractionCountsNonzeroPartitions) {
    auto h = PartitionHistogram::with_partitions({"a", "b", "c", "d"});
    h.add("a");
    h.add("b", 100);
    EXPECT_DOUBLE_EQ(h.coverage_fraction(), 0.5);
}

TEST(PartitionHistogram, MergeUnionsLabelsAndAddsCounts) {
    auto a = PartitionHistogram::with_partitions({"x", "y"});
    a.add("x", 3);
    auto b = PartitionHistogram::with_partitions({"y", "z"});
    b.add("y", 2);
    a.merge(b);
    EXPECT_EQ(a.count("x"), 3u);
    EXPECT_EQ(a.count("y"), 2u);
    EXPECT_EQ(a.count("z"), 0u);
    EXPECT_TRUE(a.has_partition("z"));  // declared-but-untested survives
}

TEST(PartitionHistogram, MergePreservesZeroDeclarations) {
    auto a = PartitionHistogram::with_partitions({"x"});
    PartitionHistogram b;
    b.add("y", 7);
    a.merge(b);
    EXPECT_EQ(a.untested(), std::vector<std::string>{"x"});
    EXPECT_EQ(a.count("y"), 7u);
}

TEST(PartitionHistogram, MaxRowFindsHeaviestPartition) {
    PartitionHistogram h;
    h.add("small", 10);
    h.add("big", 1000);
    h.add("mid", 100);
    ASSERT_TRUE(h.max_row());
    EXPECT_EQ(h.max_row()->label, "big");
    EXPECT_EQ(h.max_row()->count, 1000u);
}

TEST(PartitionHistogram, LookupOfUnknownLabelIsZeroNotError) {
    PartitionHistogram h;
    EXPECT_EQ(h.count("nope"), 0u);
    EXPECT_FALSE(h.has_partition("nope"));
}

}  // namespace
}  // namespace iocov::stats
