// read/write families and lseek.
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "abi/limits.hpp"
#include "abi/seek.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::syscall {
namespace {

using namespace iocov::abi;  // NOLINT

class IoTest : public ::testing::Test {
  protected:
    IoTest()
        : fs_(),
          fx_(testers::prepare_environment(fs_, "/mnt/test")),
          kernel_(fs_, &buffer_),
          proc_(kernel_.make_process(1, vfs::Credentials::user(1000, 1000))) {
    }

    int open_rw(const char* name) {
        const auto fd =
            proc_.sys_open((fx_.scratch + "/" + name).c_str(),
                           O_CREAT | O_RDWR, 0644);
        EXPECT_GE(fd, 0);
        return static_cast<int>(fd);
    }

    std::vector<std::byte> buf(std::initializer_list<int> xs) {
        std::vector<std::byte> out;
        for (int x : xs) out.push_back(static_cast<std::byte>(x));
        return out;
    }

    vfs::FileSystem fs_;
    testers::Fixtures fx_;
    trace::TraceBuffer buffer_;
    Kernel kernel_;
    Process proc_;
};

TEST_F(IoTest, WriteAdvancesOffsetAndReadsBack) {
    const int fd = open_rw("f");
    const auto data = buf({1, 2, 3, 4});
    EXPECT_EQ(proc_.sys_write(fd, WriteSrc::real(data)), 4);
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_SET_), 0);
    std::vector<std::byte> out(4);
    EXPECT_EQ(proc_.sys_read(fd, ReadDst::real(out)), 4);
    EXPECT_EQ(out, data);
    // Offset is now at EOF: further reads return 0.
    EXPECT_EQ(proc_.sys_read(fd, ReadDst::real(out)), 0);
}

TEST_F(IoTest, ZeroLengthWriteIsPosixNoOp) {
    const int fd = open_rw("f");
    EXPECT_EQ(proc_.sys_write(fd, WriteSrc::pattern(0, std::byte{1})), 0);
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_END_), 0);  // size unchanged
}

TEST_F(IoTest, PwriteDoesNotMoveOffset) {
    const int fd = open_rw("f");
    EXPECT_EQ(proc_.sys_pwrite64(fd, WriteSrc::pattern(10, std::byte{7}),
                                 100),
              10);
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_CUR_), 0);
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_END_), 110);
    EXPECT_EQ(proc_.sys_pwrite64(fd, WriteSrc::pattern(1, std::byte{7}),
                                 -5),
              fail(Err::EINVAL_));
}

TEST_F(IoTest, AppendAlwaysWritesAtEof) {
    const auto path = fx_.scratch + "/app";
    const auto fd0 = proc_.sys_open(path.c_str(), O_CREAT | O_WRONLY, 0644);
    proc_.sys_write(static_cast<int>(fd0),
                    WriteSrc::pattern(100, std::byte{1}));
    const auto fd = proc_.sys_open(path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(proc_.sys_write(static_cast<int>(fd),
                              WriteSrc::pattern(10, std::byte{2})),
              10);
    EXPECT_EQ(proc_.sys_lseek(static_cast<int>(fd), 0, SEEK_END_), 110);
}

TEST_F(IoTest, BadFdCombinations) {
    EXPECT_EQ(proc_.sys_read(-1, ReadDst::discard(10)), fail(Err::EBADF_));
    EXPECT_EQ(proc_.sys_write(99, WriteSrc::pattern(1, std::byte{0})),
              fail(Err::EBADF_));
    // Wrong access mode.
    const auto rd = proc_.sys_open(fx_.plain_file.c_str(), O_RDONLY);
    EXPECT_EQ(proc_.sys_write(static_cast<int>(rd),
                              WriteSrc::pattern(1, std::byte{0})),
              fail(Err::EBADF_));
    const auto wr = proc_.sys_open((fx_.scratch + "/w").c_str(),
                                   O_CREAT | O_WRONLY, 0644);
    EXPECT_EQ(proc_.sys_read(static_cast<int>(wr), ReadDst::discard(1)),
              fail(Err::EBADF_));
    // O_PATH fds cannot do IO at all.
    const auto pfd = proc_.sys_open(fx_.plain_file.c_str(),
                                    O_RDONLY | O_PATH);
    EXPECT_EQ(proc_.sys_read(static_cast<int>(pfd), ReadDst::discard(1)),
              fail(Err::EBADF_));
}

TEST_F(IoTest, ReadOnDirectoryIsEisdir) {
    const auto dfd = proc_.sys_open(fx_.scratch.c_str(),
                                    O_RDONLY | O_DIRECTORY);
    EXPECT_EQ(proc_.sys_read(static_cast<int>(dfd), ReadDst::discard(16)),
              fail(Err::EISDIR_));
}

TEST_F(IoTest, EfaultOnBadUserBuffer) {
    const int fd = open_rw("f");
    EXPECT_EQ(proc_.sys_write(fd, WriteSrc::bad_address(16)),
              fail(Err::EFAULT_));
    EXPECT_EQ(proc_.sys_read(fd, ReadDst::bad_address(16)),
              fail(Err::EFAULT_));
    // Zero-length transfers with a bad pointer succeed, as in Linux.
    EXPECT_EQ(proc_.sys_write(fd, WriteSrc::bad_address(0)), 0);
    EXPECT_EQ(proc_.sys_read(fd, ReadDst::bad_address(0)), 0);
}

TEST_F(IoTest, GiantCountIsClampedToMaxRwCount) {
    const int fd = open_rw("f");
    const auto ret = proc_.sys_write(
        fd, WriteSrc::pattern(MAX_RW_COUNT + 4096, std::byte{1}));
    EXPECT_EQ(static_cast<std::uint64_t>(ret), MAX_RW_COUNT);
}

TEST_F(IoTest, DirectIoRequiresAlignment) {
    const auto fd = proc_.sys_open((fx_.scratch + "/d").c_str(),
                                   O_CREAT | O_RDWR | O_DIRECT, 0644);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(proc_.sys_write(static_cast<int>(fd),
                              WriteSrc::pattern(100, std::byte{1})),
              fail(Err::EINVAL_));
    EXPECT_EQ(proc_.sys_write(static_cast<int>(fd),
                              WriteSrc::pattern(512, std::byte{1})),
              512);
    EXPECT_EQ(proc_.sys_pwrite64(static_cast<int>(fd),
                                 WriteSrc::pattern(512, std::byte{1}), 7),
              fail(Err::EINVAL_));
}

TEST_F(IoTest, WritevGathersAndReportsTotals) {
    const int fd = open_rw("v");
    const auto ret = proc_.sys_writev(
        fd, {WriteSrc::pattern(3, std::byte{1}),
             WriteSrc::pattern(5, std::byte{2})});
    EXPECT_EQ(ret, 8);
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_SET_), 0);
    std::vector<std::byte> a(3), b(5);
    EXPECT_EQ(proc_.sys_readv(fd, {ReadDst::real(a), ReadDst::real(b)}), 8);
    EXPECT_EQ(a[2], std::byte{1});
    EXPECT_EQ(b[0], std::byte{2});
}

TEST_F(IoTest, IovecCountLimit) {
    const int fd = open_rw("v");
    std::vector<ReadDst> iov(IOV_MAX_ + 1, ReadDst::discard(1));
    EXPECT_EQ(proc_.sys_readv(fd, std::move(iov)), fail(Err::EINVAL_));
}

TEST_F(IoTest, LseekWhenceMatrix) {
    const int fd = open_rw("s");
    proc_.sys_write(fd, WriteSrc::pattern(1000, std::byte{1}));
    EXPECT_EQ(proc_.sys_lseek(fd, 100, SEEK_SET_), 100);
    EXPECT_EQ(proc_.sys_lseek(fd, 50, SEEK_CUR_), 150);
    EXPECT_EQ(proc_.sys_lseek(fd, -100, SEEK_END_), 900);
    // Past EOF is legal.
    EXPECT_EQ(proc_.sys_lseek(fd, 5000, SEEK_SET_), 5000);
    // Errors.
    EXPECT_EQ(proc_.sys_lseek(fd, -1, SEEK_SET_), fail(Err::EINVAL_));
    EXPECT_EQ(proc_.sys_lseek(fd, 0, 99), fail(Err::EINVAL_));
    EXPECT_EQ(proc_.sys_lseek(999, 0, SEEK_SET_), fail(Err::EBADF_));
    EXPECT_EQ(proc_.sys_lseek(fd, -2000, SEEK_END_), fail(Err::EINVAL_));
    EXPECT_EQ(proc_.sys_lseek(
                  fd, std::numeric_limits<std::int64_t>::max(), SEEK_END_),
              fail(Err::EOVERFLOW_));
}

TEST_F(IoTest, LseekDataAndHole) {
    const int fd = open_rw("sparse");
    proc_.sys_pwrite64(fd, WriteSrc::pattern(4096, std::byte{1}), 0);
    proc_.sys_pwrite64(fd, WriteSrc::pattern(4096, std::byte{2}),
                       1 << 20);
    const auto size = (1 << 20) + 4096;
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_DATA_), 0);
    EXPECT_EQ(proc_.sys_lseek(fd, 4096, SEEK_DATA_), 1 << 20);
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_HOLE_), 4096);
    EXPECT_EQ(proc_.sys_lseek(fd, 1 << 20, SEEK_HOLE_), size);
    EXPECT_EQ(proc_.sys_lseek(fd, size + 1, SEEK_DATA_),
              fail(Err::ENXIO_));
    EXPECT_EQ(proc_.sys_lseek(fd, -1, SEEK_DATA_), fail(Err::ENXIO_));
}

TEST_F(IoTest, LseekOnFifoIsEspipe) {
    // Open the fixture fifo read-only (always succeeds in our model).
    const auto fd = proc_.sys_open(fx_.fifo.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(proc_.sys_lseek(static_cast<int>(fd), 0, SEEK_SET_),
              fail(Err::ESPIPE_));
    // pread on a fifo is also ESPIPE.
    EXPECT_EQ(proc_.sys_pread64(static_cast<int>(fd), ReadDst::discard(1),
                                0),
              fail(Err::ESPIPE_));
}

TEST_F(IoTest, FifoReadAndWriteSemantics) {
    const auto rfd = proc_.sys_open(fx_.fifo.c_str(),
                                    O_RDONLY | O_NONBLOCK);
    ASSERT_GE(rfd, 0);
    EXPECT_EQ(proc_.sys_read(static_cast<int>(rfd), ReadDst::discard(16)),
              fail(Err::EAGAIN_));
    const auto rfd_blocking = proc_.sys_open(fx_.fifo.c_str(), O_RDONLY);
    EXPECT_EQ(proc_.sys_read(static_cast<int>(rfd_blocking),
                             ReadDst::discard(16)),
              fail(Err::EINTR_));
    // Writer with no reader (our fifo never has one): EPIPE.
    const auto wfd = proc_.sys_open(fx_.fifo.c_str(), O_WRONLY);
    ASSERT_GE(wfd, 0);
    EXPECT_EQ(proc_.sys_write(static_cast<int>(wfd),
                              WriteSrc::pattern(4, std::byte{1})),
              fail(Err::EPIPE_));
}

TEST_F(IoTest, DiscardReadsHandleLargeSizes) {
    const int fd = open_rw("big");
    proc_.sys_pwrite64(fd, WriteSrc::pattern(3 << 20, std::byte{9}), 0);
    proc_.sys_lseek(fd, 0, SEEK_SET_);
    EXPECT_EQ(proc_.sys_read(fd, ReadDst::discard(4 << 20)), 3 << 20);
}

TEST_F(IoTest, EnospcRollbackKeepsOffsetUnchanged) {
    const int fd = open_rw("nospace");
    fs_.set_capacity_blocks(fs_.used_blocks());
    EXPECT_EQ(proc_.sys_write(fd, WriteSrc::pattern(8192, std::byte{1})),
              fail(Err::ENOSPC_));
    EXPECT_EQ(proc_.sys_lseek(fd, 0, SEEK_CUR_), 0);
}

}  // namespace
}  // namespace iocov::syscall
