#include "core/combos.hpp"

#include <gtest/gtest.h>

#include "abi/fcntl.hpp"

namespace iocov::core {
namespace {

TEST(FeasiblePairs, ExcludesAccessModeAndAbsorbedPairs) {
    const auto pairs = feasible_open_flag_pairs();
    // 20 flags -> C(20,2)=190, minus 3 access-mode pairs, minus 2
    // absorbed pairs (O_SYNC+O_DSYNC, O_TMPFILE+O_DIRECTORY).
    EXPECT_EQ(pairs.size(), 185u);
    for (const auto& p : pairs) {
        EXPECT_NE(p, "O_RDONLY+O_WRONLY");
        EXPECT_NE(p, "O_DSYNC+O_SYNC");
        EXPECT_NE(p, "O_DIRECTORY+O_TMPFILE");
    }
    // Sorted and unique.
    for (std::size_t i = 1; i < pairs.size(); ++i)
        EXPECT_LT(pairs[i - 1], pairs[i]);
}

TEST(PairCoverage, CountsTestedPairs) {
    Analyzer a;
    trace::TraceEvent ev;
    ev.syscall = "open";
    ev.args = {{"pathname", trace::ArgValue{std::string("/mnt/test/f")}},
               {"flags", trace::ArgValue{std::uint64_t{
                             abi::O_WRONLY | abi::O_CREAT | abi::O_TRUNC}}},
               {"mode", trace::ArgValue{std::uint64_t{0644}}}};
    ev.ret = 3;
    a.consume(ev);
    const auto pc =
        open_flag_pair_coverage(*a.report().find_input("open", "flags"));
    // Three flags -> three pairs.
    EXPECT_EQ(pc.tested, 3u);
    EXPECT_EQ(pc.feasible, 185u);
    EXPECT_EQ(pc.untested.size(), 182u);
    EXPECT_NEAR(pc.fraction, 3.0 / 185.0, 1e-12);
}

TEST(PairCoverage, EmptyReportHasZeroCoverage) {
    Analyzer a;
    const auto pc =
        open_flag_pair_coverage(*a.report().find_input("open", "flags"));
    EXPECT_EQ(pc.tested, 0u);
    EXPECT_EQ(pc.untested.size(), pc.feasible);
}

}  // namespace
}  // namespace iocov::core
