#include "vfs/file_data.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "testers/rng.hpp"

namespace iocov::vfs {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> xs) {
    std::vector<std::byte> out;
    for (int x : xs) out.push_back(static_cast<std::byte>(x));
    return out;
}

std::vector<std::byte> read_all(const FileData& fd) {
    std::vector<std::byte> out(fd.size());
    fd.read(0, out);
    return out;
}

TEST(FileData, EmptyFile) {
    FileData fd;
    EXPECT_EQ(fd.size(), 0u);
    EXPECT_EQ(fd.allocated_bytes(), 0u);
    std::byte b;
    EXPECT_EQ(fd.read(0, {&b, 1}), 0u);
    EXPECT_FALSE(fd.at(0).has_value());
}

TEST(FileData, WriteThenReadBack) {
    FileData fd;
    const auto data = bytes({1, 2, 3, 4});
    fd.write(0, data);
    EXPECT_EQ(fd.size(), 4u);
    EXPECT_EQ(read_all(fd), data);
}

TEST(FileData, WriteAtOffsetCreatesLeadingHole) {
    FileData fd;
    fd.write(100, bytes({9}));
    EXPECT_EQ(fd.size(), 101u);
    EXPECT_EQ(fd.at(0), std::byte{0});   // hole reads as zero
    EXPECT_EQ(fd.at(99), std::byte{0});
    EXPECT_EQ(fd.at(100), std::byte{9});
    EXPECT_EQ(fd.allocated_bytes(), 1u);  // the hole costs nothing
}

TEST(FileData, OverlappingWriteSplitsExtents) {
    FileData fd;
    fd.write(0, bytes({1, 1, 1, 1, 1, 1}));
    fd.write(2, bytes({2, 2}));
    EXPECT_EQ(read_all(fd), bytes({1, 1, 2, 2, 1, 1}));
    EXPECT_EQ(fd.extent_count(), 3u);  // head, middle, tail
}

TEST(FileData, WriteCoveringWholeExtentReplacesIt) {
    FileData fd;
    fd.write(4, bytes({5, 5}));
    fd.write(0, bytes({7, 7, 7, 7, 7, 7, 7, 7}));
    EXPECT_EQ(read_all(fd), bytes({7, 7, 7, 7, 7, 7, 7, 7}));
    EXPECT_EQ(fd.extent_count(), 1u);
}

TEST(FileData, PatternWriteIsConstantSpace) {
    FileData fd;
    fd.write_pattern(0, 258ULL << 20, std::byte{0xab});  // the Fig. 3 max
    EXPECT_EQ(fd.size(), 258ULL << 20);
    EXPECT_EQ(fd.extent_count(), 1u);
    EXPECT_EQ(fd.at(0), std::byte{0xab});
    EXPECT_EQ(fd.at((258ULL << 20) - 1), std::byte{0xab});
}

TEST(FileData, RealWriteOverPatternPreservesSurroundings) {
    FileData fd;
    fd.write_pattern(0, 100, std::byte{0x11});
    fd.write(50, bytes({0x22, 0x22}));
    EXPECT_EQ(fd.at(49), std::byte{0x11});
    EXPECT_EQ(fd.at(50), std::byte{0x22});
    EXPECT_EQ(fd.at(51), std::byte{0x22});
    EXPECT_EQ(fd.at(52), std::byte{0x11});
}

TEST(FileData, TruncateShrinkDiscardsData) {
    FileData fd;
    fd.write(0, bytes({1, 2, 3, 4, 5, 6, 7, 8}));
    fd.set_size(4);
    EXPECT_EQ(fd.size(), 4u);
    EXPECT_EQ(fd.allocated_bytes(), 4u);
    // Re-extending exposes zeros, not the old data (no stale bytes).
    fd.set_size(8);
    EXPECT_EQ(fd.at(5), std::byte{0});
}

TEST(FileData, TruncateGrowCreatesHole) {
    FileData fd;
    fd.write(0, bytes({1}));
    fd.set_size(1'000'000);
    EXPECT_EQ(fd.size(), 1'000'000u);
    EXPECT_EQ(fd.allocated_bytes(), 1u);
}

TEST(FileData, TruncateMidExtentTrimsIt) {
    FileData fd;
    fd.write(0, bytes({1, 2, 3, 4, 5, 6}));
    fd.set_size(3);
    EXPECT_EQ(read_all(fd), bytes({1, 2, 3}));
}

TEST(FileData, ShortReadAtEof) {
    FileData fd;
    fd.write(0, bytes({1, 2, 3}));
    std::vector<std::byte> buf(10, std::byte{0xff});
    EXPECT_EQ(fd.read(1, buf), 2u);
    EXPECT_EQ(buf[0], std::byte{2});
    EXPECT_EQ(buf[1], std::byte{3});
}

TEST(FileData, AllocatedBlocksCountsDistinctBlocks) {
    FileData fd;
    // Two extents within the same 4K block: one block charged.
    fd.write(0, bytes({1}));
    fd.write(100, bytes({2}));
    EXPECT_EQ(fd.allocated_blocks(4096), 1u);
    // An extent in a far block adds one more.
    fd.write(8192, bytes({3}));
    EXPECT_EQ(fd.allocated_blocks(4096), 2u);
    // A spanning extent is charged for each block it touches.
    fd.write_pattern(4096 * 10, 4096 * 3, std::byte{4});
    EXPECT_EQ(fd.allocated_blocks(4096), 5u);
}

TEST(FileData, NewBlocksForReservesOnlyUntouchedBlocks) {
    FileData fd;
    fd.write_pattern(0, 4096, std::byte{1});
    EXPECT_EQ(fd.new_blocks_for(0, 4096, 4096), 0u);    // fully covered
    EXPECT_EQ(fd.new_blocks_for(0, 8192, 4096), 1u);    // one new block
    EXPECT_EQ(fd.new_blocks_for(100, 100, 4096), 0u);   // inside block 0
    EXPECT_EQ(fd.new_blocks_for(4096, 4096, 4096), 1u);
    EXPECT_EQ(fd.new_blocks_for(1 << 20, 4096 * 4, 4096), 4u);
    EXPECT_EQ(fd.new_blocks_for(0, 0, 4096), 0u);
}

TEST(FileData, NewBlocksForSeesBoundarySharedBlocks) {
    FileData fd;
    fd.write(0, bytes({1}));  // touches block 0 only at byte 0
    // A write later in block 0 must not charge block 0 again.
    EXPECT_EQ(fd.new_blocks_for(2000, 100, 4096), 0u);
}

TEST(FileData, SeekDataAndHole) {
    FileData fd;
    fd.write_pattern(0, 4096, std::byte{1});          // data [0,4096)
    fd.write_pattern(16384, 4096, std::byte{2});      // data [16384,20480)
    fd.set_size(32768);                               // tail hole

    EXPECT_EQ(fd.next_data(0), 0u);
    EXPECT_EQ(fd.next_data(4096), 16384u);            // skip the hole
    EXPECT_EQ(fd.next_data(20480), std::nullopt);     // only hole remains
    EXPECT_EQ(fd.next_hole(0), 4096u);
    EXPECT_EQ(fd.next_hole(16384), 20480u);
    EXPECT_EQ(fd.next_hole(20480), 20480u);           // already in hole
}

TEST(FileData, NextHoleAtEofIsFileSize) {
    FileData fd;
    fd.write_pattern(0, 100, std::byte{1});
    EXPECT_EQ(fd.next_hole(50), 100u);  // EOF counts as a hole
}

TEST(FileData, ContentEqualsComparesPatternAndMaterialized) {
    FileData a, b;
    a.write_pattern(0, 1000, std::byte{0x42});
    std::vector<std::byte> raw(1000, std::byte{0x42});
    b.write(0, raw);
    EXPECT_TRUE(a.content_equals(b));
    b.write(500, bytes({0x43}));
    EXPECT_FALSE(a.content_equals(b));
}

// ---- property test: extent map vs a dense reference model -----------------

class FileDataFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FileDataFuzz, MatchesDenseReferenceModel) {
    testers::Rng rng(GetParam());
    FileData fd;
    std::vector<std::byte> model;  // dense reference

    auto model_write = [&](std::uint64_t off, std::uint64_t len,
                           std::byte v) {
        if (model.size() < off + len) model.resize(off + len, std::byte{0});
        for (std::uint64_t i = 0; i < len; ++i) model[off + i] = v;
    };

    for (int step = 0; step < 300; ++step) {
        const auto op = rng.below(4);
        const std::uint64_t off = rng.below(2048);
        const std::uint64_t len = rng.below(512);
        const auto v = static_cast<std::byte>(rng.below(255) + 1);
        if (op == 0) {
            std::vector<std::byte> data(len, v);
            fd.write(off, data);
            model_write(off, len, v);
        } else if (op == 1) {
            fd.write_pattern(off, len, v);
            model_write(off, len, v);
        } else if (op == 2) {
            const std::uint64_t new_size = rng.below(3000);
            fd.set_size(new_size);
            model.resize(new_size, std::byte{0});
        } else {
            // Random read must match the model byte for byte.
            std::vector<std::byte> got(len, std::byte{0xee});
            const auto n = fd.read(off, got);
            const auto expect_n =
                off >= model.size()
                    ? 0u
                    : std::min<std::uint64_t>(len, model.size() - off);
            ASSERT_EQ(n, expect_n) << "step " << step;
            for (std::uint64_t i = 0; i < n; ++i)
                ASSERT_EQ(got[i], model[off + i])
                    << "step " << step << " byte " << off + i;
        }
        ASSERT_EQ(fd.size(), model.size()) << "step " << step;
    }

    // Final full comparison plus invariants.
    const auto all = read_all(fd);
    ASSERT_EQ(all.size(), model.size());
    EXPECT_EQ(all, model);
    EXPECT_LE(fd.allocated_bytes(), std::max<std::uint64_t>(model.size(), 1));
    // next_data/next_hole agree with the model's zero structure at a few
    // probe points (holes read as zero, though zero bytes may be data).
    for (std::uint64_t probe = 0; probe < model.size();
         probe += 257) {
        const auto d = fd.next_data(probe);
        if (d) {
            ASSERT_LT(*d, fd.size());
            ASSERT_GE(*d, probe);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileDataFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace iocov::vfs
