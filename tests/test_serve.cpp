// The serve subsystem: wire-protocol framing (including torn and
// corrupt frames), LiveCoverage's batch-equivalence and consistency
// contracts, and the daemon end-to-end — concurrent producers over
// real sockets, queries during ingest, duplicate dedup, and
// checkpoint-based crash recovery.  The headline oracles mirror
// DESIGN.md §13: a live report equals a batch analyze of the same
// shards bit-identically at the saved-report level, and a query never
// observes a torn histogram.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "abi/seek.hpp"
#include "core/iocov.hpp"
#include "core/live.hpp"
#include "core/report_io.hpp"
#include "core/snapshot.hpp"
#include "host/fault.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "syscall/kernel.hpp"
#include "syscall/process.hpp"
#include "testers/fixtures.hpp"
#include "testers/generator.hpp"
#include "trace/binary_format.hpp"
#include "trace/sink.hpp"
#include "vfs/filesystem.hpp"

namespace iocov::serve {
namespace {

namespace fs = std::filesystem;

// ---- fixtures --------------------------------------------------------------

/// One IOCT shard of a simulated workload; `seed` varies the syscall
/// mix so distinct shards cover distinct partitions.
std::string make_shard(std::uint64_t seed, std::size_t min_events = 200) {
    vfs::FileSystem vfsfs(testers::recommended_fs_config());
    auto fx = testers::prepare_environment(vfsfs, "/mnt/test");
    std::ostringstream os;
    {
        trace::BinarySink sink(os);
        syscall::Kernel kernel(vfsfs, &sink);
        auto proc = kernel.make_process(
            100 + static_cast<std::uint32_t>(seed % 7),
            vfs::Credentials::user(1000, 1000));
        std::size_t emitted = 0;
        for (std::size_t n = 0; emitted < min_events; ++n) {
            const auto salt = seed * 131 + n * 17;
            const std::string path =
                fx.scratch + "/s" + std::to_string(seed) + "_" +
                std::to_string(n % 11);
            const std::uint32_t flags =
                salt % 3 == 0   ? abi::O_RDWR | abi::O_CREAT
                : salt % 3 == 1 ? abi::O_WRONLY | abi::O_CREAT | abi::O_APPEND
                                : abi::O_RDONLY | abi::O_CREAT;
            const auto fd =
                static_cast<int>(proc.sys_open(path.c_str(), flags, 0644));
            proc.sys_write(fd, syscall::WriteSrc::pattern(
                                   std::uint64_t{1} << (salt % 12),
                                   std::byte{0xa5}));
            proc.sys_lseek(fd, 0,
                           salt % 4 == 0 ? abi::SEEK_END_ : abi::SEEK_SET_);
            proc.sys_read(fd, syscall::ReadDst::discard(1u << (salt % 9)));
            proc.sys_close(fd);
            emitted += 5;
        }
    }
    return os.str();
}

/// The deterministic text the gates compare — the saved-report bytes.
std::string report_text(const core::CoverageReport& report) {
    std::ostringstream os;
    core::save_report(os, report);
    return os.str();
}

/// Batch oracle: each shard through a fresh analyzer, merged — exactly
/// `iocov analyze DIR/` over the same files.
std::string batch_report(const std::vector<std::string>& shards) {
    core::IOCov merged(trace::FilterConfig::mount_point("/mnt/test"));
    for (const auto& shard : shards) {
        core::IOCov one(trace::FilterConfig::mount_point("/mnt/test"));
        one.consume_binary(shard);
        merged.merge(one);
    }
    return report_text(merged.report());
}

/// Per-test temp dir (sockets, checkpoints, deltas).
class Serve : public ::testing::Test {
  protected:
    void SetUp() override {
        host::FaultHook::reset();
        dir_ = fs::temp_directory_path() /
               ("iocov_serve_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }
    void TearDown() override {
        host::FaultHook::reset();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path(const char* name) const {
        return (dir_ / name).string();
    }
    fs::path dir_;
};

// ---- protocol --------------------------------------------------------------

TEST(Protocol, PushFrameRoundTrips) {
    const std::string shard = "\x00\x01raw ioct bytes\xff";
    const auto wire = encode_push("shard-007.ioct", shard);
    FrameDecoder dec;
    dec.feed(wire);
    Frame frame;
    ASSERT_EQ(dec.next(frame), FrameDecoder::Status::Frame);
    EXPECT_EQ(frame.tag, MsgTag::Push);
    std::string name;
    std::string_view body;
    ASSERT_TRUE(decode_push(frame.body, name, body));
    EXPECT_EQ(name, "shard-007.ioct");
    EXPECT_EQ(body, shard);
    EXPECT_EQ(dec.pending(), 0u);
    EXPECT_EQ(dec.next(frame), FrameDecoder::Status::NeedMore);
}

TEST(Protocol, OkFrameRoundTripsLargeEpoch) {
    const auto wire = encode_ok(0xdeadbeefcafeULL, "payload text\n");
    FrameDecoder dec;
    dec.feed(wire);
    Frame frame;
    ASSERT_EQ(dec.next(frame), FrameDecoder::Status::Frame);
    EXPECT_EQ(frame.tag, MsgTag::Ok);
    std::uint64_t epoch = 0;
    std::string_view text;
    ASSERT_TRUE(decode_ok(frame.body, epoch, text));
    EXPECT_EQ(epoch, 0xdeadbeefcafeULL);
    EXPECT_EQ(text, "payload text\n");
}

TEST(Protocol, ByteAtATimeFeedingYieldsIdenticalFrames) {
    const auto wire = encode_push("n", make_shard(1, 50)) +
                      encode_query("report") + encode_stop();
    FrameDecoder dec;
    std::vector<Frame> frames;
    for (const char c : wire) {
        dec.feed(std::string_view(&c, 1));
        Frame f;
        while (dec.next(f) == FrameDecoder::Status::Frame)
            frames.push_back(f);
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].tag, MsgTag::Push);
    EXPECT_EQ(frames[1].tag, MsgTag::Query);
    EXPECT_EQ(frames[1].body, "report");
    EXPECT_EQ(frames[2].tag, MsgTag::Stop);
    EXPECT_TRUE(frames[2].body.empty());
    EXPECT_EQ(dec.pending(), 0u);
}

TEST(Protocol, TornFrameIsPendingNotDelivered) {
    const auto wire = encode_push("gone", "shard bytes that never finish");
    FrameDecoder dec;
    dec.feed(std::string_view(wire).substr(0, wire.size() - 7));
    Frame f;
    EXPECT_EQ(dec.next(f), FrameDecoder::Status::NeedMore);
    EXPECT_GT(dec.pending(), 0u) << "a close now must diagnose torn bytes";
    // The remaining bytes arrive after all: the frame completes.
    dec.feed(std::string_view(wire).substr(wire.size() - 7));
    ASSERT_EQ(dec.next(f), FrameDecoder::Status::Frame);
    EXPECT_EQ(dec.pending(), 0u);
}

TEST(Protocol, ZeroLengthFrameIsCorrupt) {
    FrameDecoder dec;
    dec.feed(std::string_view("\x00\x00\x00\x00", 4));
    Frame f;
    std::string reason;
    EXPECT_EQ(dec.next(f, &reason), FrameDecoder::Status::Corrupt);
    EXPECT_EQ(reason, "zero-length frame");
    // Poisoned: even valid bytes afterwards stay corrupt.
    dec.feed(encode_stop());
    EXPECT_EQ(dec.next(f, &reason), FrameDecoder::Status::Corrupt);
}

TEST(Protocol, OversizedFrameIsCorrupt) {
    FrameDecoder dec;
    dec.feed(std::string_view("\xff\xff\xff\xff", 4));
    Frame f;
    std::string reason;
    EXPECT_EQ(dec.next(f, &reason), FrameDecoder::Status::Corrupt);
    EXPECT_NE(reason.find("oversized frame"), std::string::npos) << reason;
}

TEST(Protocol, UnknownTagIsCorrupt) {
    FrameDecoder dec;
    dec.feed(std::string_view("\x01\x00\x00\x00\x7f", 5));
    Frame f;
    std::string reason;
    EXPECT_EQ(dec.next(f, &reason), FrameDecoder::Status::Corrupt);
    EXPECT_NE(reason.find("unknown frame tag"), std::string::npos) << reason;
}

TEST(Protocol, MalformedPushBodyIsRejected) {
    std::string name;
    std::string_view shard;
    // Varint name length pointing past the end of the body.
    EXPECT_FALSE(decode_push(std::string_view("\x20name", 5), name, shard));
    EXPECT_FALSE(decode_push(std::string_view{}, name, shard));
}

// ---- LiveCoverage ----------------------------------------------------------

TEST(LiveCoverage, StartsEmptyAtEpochZero) {
    core::LiveCoverage live;
    const auto pub = live.read();
    ASSERT_NE(pub, nullptr);
    EXPECT_EQ(pub->epoch, 0u);
    EXPECT_EQ(pub->state.report.events_seen, 0u);
    EXPECT_TRUE(live.consumed().empty());
}

TEST(LiveCoverage, AnyPushOrderMatchesBatchBitIdentically) {
    std::vector<std::string> shards;
    for (std::uint64_t s = 0; s < 5; ++s) shards.push_back(make_shard(s));
    const auto want = batch_report(shards);

    core::LiveCoverage fwd, rev, threaded;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const auto r = fwd.push("s" + std::to_string(i), shards[i]);
        EXPECT_TRUE(r.accepted);
        EXPECT_EQ(r.epoch, i + 1);
        EXPECT_GT(r.events, 0u);
    }
    for (std::size_t i = shards.size(); i-- > 0;)
        rev.push("s" + std::to_string(i), shards[i]);
    for (std::size_t i = 0; i < shards.size(); ++i)
        threaded.push("s" + std::to_string(i), shards[i], 4);

    EXPECT_EQ(report_text(fwd.read()->state.report), want);
    EXPECT_EQ(report_text(rev.read()->state.report), want);
    EXPECT_EQ(report_text(threaded.read()->state.report), want)
        << "parallel shard decode must stay bit-identical";
}

TEST(LiveCoverage, DuplicateNamesAreSkippedIdempotently) {
    core::LiveCoverage live;
    const auto shard = make_shard(3);
    EXPECT_TRUE(live.push("a", shard).accepted);
    const auto dup = live.push("a", shard);
    EXPECT_FALSE(dup.accepted);
    EXPECT_EQ(dup.epoch, 1u);
    const auto text = report_text(live.read()->state.report);
    live.push("a", shard);
    EXPECT_EQ(report_text(live.read()->state.report), text);
    EXPECT_EQ(live.consumed(), std::vector<std::string>{"a"});
}

TEST(LiveCoverage, PublishedStatesAreImmutableConsistentPrefixes) {
    core::LiveCoverage live;
    const auto shard = make_shard(9);
    core::IOCov one(trace::FilterConfig::mount_point("/mnt/test"));
    one.consume_binary(shard);
    const auto per_shard = one.report().events_seen;
    ASSERT_GT(per_shard, 0u);

    const auto empty = live.read();
    live.push("s1", shard);
    const auto after1 = live.read();
    live.push("s2", shard);  // distinct name, same bytes: counts double
    const auto after2 = live.read();

    // Earlier grabs must be frozen — publication is copy, not mutation.
    EXPECT_EQ(empty->epoch, 0u);
    EXPECT_EQ(empty->state.report.events_seen, 0u);
    EXPECT_EQ(after1->epoch, 1u);
    EXPECT_EQ(after1->state.report.events_seen, per_shard);
    EXPECT_EQ(after2->epoch, 2u);
    EXPECT_EQ(after2->state.report.events_seen, 2 * per_shard);
}

TEST(LiveCoverage, MergingDeltasReproducesTheFullState) {
    core::LiveCoverage live;
    std::vector<core::IOCovSnapshot> deltas;
    for (std::uint64_t s = 0; s < 6; ++s) {
        live.push("s" + std::to_string(s), make_shard(s));
        if (s % 2 == 1) {
            std::uint64_t pushes = 0;
            deltas.push_back(live.take_delta(&pushes));
            EXPECT_EQ(pushes, 2u);
        }
    }
    core::IOCov folded(trace::FilterConfig::mount_point("/mnt/test"));
    for (const auto& d : deltas) folded.merge(d);
    EXPECT_EQ(report_text(folded.report()),
              report_text(live.read()->state.report));
    // And the accumulator was reset each time: an immediate take is empty.
    std::uint64_t pushes = 99;
    live.take_delta(&pushes);
    EXPECT_EQ(pushes, 0u);
}

TEST(LiveCoverage, RestoreThenRepushEverythingConverges) {
    std::vector<std::string> shards;
    for (std::uint64_t s = 0; s < 4; ++s) shards.push_back(make_shard(s));
    const auto want = batch_report(shards);

    // A "crashed" run that only saw the first two shards...
    core::LiveCoverage before;
    before.push("s0", shards[0]);
    before.push("s1", shards[1]);
    const auto checkpointed = before.read();

    // ...restored into a fresh instance; producers re-push everything.
    core::LiveCoverage resumed;
    resumed.restore(checkpointed->state, {"s0", "s1"});
    EXPECT_EQ(resumed.epoch(), 2u);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const auto r = resumed.push("s" + std::to_string(i), shards[i]);
        EXPECT_EQ(r.accepted, i >= 2) << "restored names must dedup";
    }
    EXPECT_EQ(report_text(resumed.read()->state.report), want);
}

TEST(LiveCoverage, ConcurrentPushesAndReadsStayConsistent) {
    // N writers race identical shards (distinct names) against readers
    // that continuously grab published states.  Consistency invariant:
    // every observed state is an exact prefix — events_seen is exactly
    // epoch * per-shard-events, never a torn intermediate.
    const auto shard = make_shard(5, 120);
    core::IOCov one(trace::FilterConfig::mount_point("/mnt/test"));
    one.consume_binary(shard);
    const auto per_shard = one.report().events_seen;
    ASSERT_GT(per_shard, 0u);

    core::LiveCoverage live;
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 8;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                const auto pub = live.read();
                if (pub->state.report.events_seen !=
                    pub->epoch * per_shard)
                    torn.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (int i = 0; i < kPerWriter; ++i)
                live.push("w" + std::to_string(w) + "_" + std::to_string(i),
                          shard);
        });
    }
    for (auto& t : writers) t.join();
    done.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();

    EXPECT_EQ(torn.load(), 0u) << "a reader saw a torn histogram";
    EXPECT_EQ(live.epoch(), kWriters * kPerWriter);
    EXPECT_EQ(live.read()->state.report.events_seen,
              kWriters * kPerWriter * per_shard);
}

// ---- daemon end-to-end -----------------------------------------------------

/// Runs a Server on its own thread; joins + stops on destruction.
class DaemonFixture {
  public:
    DaemonFixture(core::LiveCoverage& live, ServeOptions opts)
        : server_(live, opts) {
        start_status_ = server_.start();
        if (!start_status_)
            thread_ = std::thread([this] { server_.run(); });
    }
    ~DaemonFixture() {
        if (thread_.joinable()) {
            server_.request_stop();
            thread_.join();
        }
    }
    host::IoStatus start_status() const { return start_status_; }
    Server& server() { return server_; }
    void join() {
        if (thread_.joinable()) thread_.join();
    }

  private:
    Server server_;
    host::IoStatus start_status_;
    std::thread thread_;
};

TEST_F(Serve, ConcurrentProducersMatchBatchBitIdentically) {
    std::vector<std::string> shards;
    for (std::uint64_t s = 0; s < 8; ++s) shards.push_back(make_shard(s));
    const auto want = batch_report(shards);

    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt)
        << daemon.start_status()->to_string();

    // One producer thread per shard, all racing over the same socket
    // path on separate connections.
    std::vector<std::thread> producers;
    std::atomic<int> failed{0};
    for (std::size_t i = 0; i < shards.size(); ++i) {
        producers.emplace_back([&, i] {
            Endpoint ep;
            ep.unix_path = path("sock");
            auto client = Client::connect(ep, 5000);
            if (!client) {
                failed.fetch_add(1);
                return;
            }
            const auto reply =
                client->push("shard" + std::to_string(i), shards[i]);
            if (!reply || !reply->ok) failed.fetch_add(1);
        });
    }
    for (auto& t : producers) t.join();
    EXPECT_EQ(failed.load(), 0);

    Endpoint ep;
    ep.unix_path = path("sock");
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto reply = client->query("report");
    ASSERT_TRUE(reply.has_value());
    ASSERT_TRUE(reply->ok) << reply->text;
    EXPECT_EQ(reply->epoch, shards.size());
    EXPECT_EQ(reply->text, want)
        << "live report must equal batch analyze byte-for-byte";

    const auto stop = client->stop();
    ASSERT_TRUE(stop.has_value());
    EXPECT_TRUE(stop->ok);
    daemon.join();
    EXPECT_EQ(daemon.server().stats().pushes_accepted, shards.size());
}

TEST_F(Serve, QueriesDuringIngestSeeOnlyConsistentPrefixes) {
    // Identical shard bytes under distinct names: any consistent
    // prefix has events_seen == epoch * per-shard.  A fuzz reader
    // hammers `status` while producers push.
    const auto shard = make_shard(11, 120);
    core::IOCov one(trace::FilterConfig::mount_point("/mnt/test"));
    one.consume_binary(shard);
    const auto per_shard = one.report().events_seen;

    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);

    constexpr int kPushes = 24;
    std::atomic<bool> done{false};
    std::atomic<int> torn{0};
    std::thread reader([&] {
        Endpoint ep;
        ep.unix_path = path("sock");
        auto client = Client::connect(ep, 5000);
        if (!client) {
            torn.fetch_add(1000);
            return;
        }
        while (!done.load(std::memory_order_acquire)) {
            const auto reply = client->query("status");
            if (!reply || !reply->ok) break;  // daemon stopping
            std::uint64_t epoch = 0, seen = 0;
            std::istringstream is(reply->text);
            std::string key;
            std::uint64_t val;
            while (is >> key >> val) {
                if (key == "epoch") epoch = val;
                if (key == "events_seen") seen = val;
            }
            if (seen != epoch * per_shard) torn.fetch_add(1);
        }
    });
    std::vector<std::thread> producers;
    for (int w = 0; w < 3; ++w) {
        producers.emplace_back([&, w] {
            Endpoint ep;
            ep.unix_path = path("sock");
            auto client = Client::connect(ep, 5000);
            ASSERT_TRUE(client.has_value());
            for (int i = 0; i < kPushes / 3; ++i) {
                const auto reply = client->push(
                    "w" + std::to_string(w) + "_" + std::to_string(i),
                    shard);
                ASSERT_TRUE(reply.has_value());
                EXPECT_TRUE(reply->ok);
            }
        });
    }
    for (auto& t : producers) t.join();
    done.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(torn.load(), 0) << "a query observed a torn state";

    Endpoint ep;
    ep.unix_path = path("sock");
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto reply = client->query("report");
    ASSERT_TRUE(reply.has_value() && reply->ok);
    EXPECT_EQ(reply->epoch, static_cast<std::uint64_t>(kPushes));
}

TEST_F(Serve, DuplicatePushesOverTheWireAreAcknowledgedAndSkipped) {
    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);

    Endpoint ep;
    ep.unix_path = path("sock");
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto shard = make_shard(2);
    const auto first = client->push("same-name", shard);
    ASSERT_TRUE(first.has_value() && first->ok);
    const auto again = client->push("same-name", shard);
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(again->ok) << "a duplicate is an ack, not an error";
    EXPECT_NE(again->text.find("duplicate"), std::string::npos);
    EXPECT_EQ(again->epoch, 1u);
    client->stop();
    daemon.join();
    EXPECT_EQ(daemon.server().stats().pushes_duplicate, 1u);
}

TEST_F(Serve, NonIoctPushIsRejectedWithoutPoisoningState) {
    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);

    Endpoint ep;
    ep.unix_path = path("sock");
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto bad = client->push("junk", "this is not an IOCT stream");
    ASSERT_TRUE(bad.has_value());
    EXPECT_FALSE(bad->ok);
    // The connection and the daemon both survive; a good push lands.
    const auto good = client->push("real", make_shard(1));
    ASSERT_TRUE(good.has_value());
    EXPECT_TRUE(good->ok);
    EXPECT_EQ(good->epoch, 1u);
    client->stop();
    daemon.join();
    EXPECT_EQ(daemon.server().stats().pushes_rejected, 1u);
}

TEST_F(Serve, TornFrameAtCloseIsDiagnosedNotIngested) {
    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);

    // Raw socket: send half a push frame, then hang up.
    const auto wire = encode_push("torn", make_shard(4));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const auto sock_path = path("sock");
    ASSERT_LT(sock_path.size(), sizeof addr.sun_path);
    std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr),
              0);
    const auto half = wire.size() / 2;
    ASSERT_EQ(::send(fd, wire.data(), half, 0),
              static_cast<ssize_t>(half));
    ::close(fd);

    // The daemon must shrug it off: a well-formed session still works.
    Endpoint ep;
    ep.unix_path = sock_path;
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto reply = client->query("ping");
    ASSERT_TRUE(reply.has_value() && reply->ok);
    client->stop();
    daemon.join();
    EXPECT_EQ(daemon.server().stats().torn_frames, 1u);
    EXPECT_EQ(daemon.server().stats().pushes_accepted, 0u)
        << "half a push must never reach the pipeline";
    EXPECT_NE(daemon.server().diagnostics().to_string().find("torn frame"),
              std::string::npos);
}

TEST_F(Serve, CorruptFrameDropsTheConnectionOnly) {
    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const auto sock_path = path("sock");
    std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr),
              0);
    // Unknown tag 0x7f — structural corruption.
    ASSERT_EQ(::send(fd, "\x01\x00\x00\x00\x7f", 5, 0), 5);
    // The daemon answers with an ERR frame and drops us; reading until
    // EOF proves the drop (rather than a hang).
    char buf[256];
    while (::recv(fd, buf, sizeof buf, 0) > 0) {
    }
    ::close(fd);

    Endpoint ep;
    ep.unix_path = sock_path;
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto reply = client->query("ping");
    ASSERT_TRUE(reply.has_value() && reply->ok);
    client->stop();
    daemon.join();
    EXPECT_GE(daemon.server().stats().torn_frames, 1u);
}

TEST_F(Serve, TcpListenerWorksOnEphemeralPort) {
    core::LiveCoverage live;
    ServeOptions opts;
    opts.tcp_port = 0;  // ephemeral
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);
    ASSERT_GT(daemon.server().tcp_port(), 0);

    Endpoint ep;
    ep.tcp_port = daemon.server().tcp_port();
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto reply = client->push("tcp-shard", make_shard(6));
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(reply->ok);
    client->stop();
    daemon.join();
}

TEST_F(Serve, DeltasEmittedDuringIngestMergeToTheFullState) {
    std::vector<std::string> shards;
    for (std::uint64_t s = 0; s < 6; ++s) shards.push_back(make_shard(s));
    const auto want = batch_report(shards);
    const auto delta_dir = path("deltas");
    fs::create_directories(delta_dir);

    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    opts.delta_dir = delta_dir;
    opts.delta_every = 2;
    opts.delta_label = "unit";
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);

    Endpoint ep;
    ep.unix_path = path("sock");
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    for (std::size_t i = 0; i < shards.size(); ++i) {
        const auto reply =
            client->push("d" + std::to_string(i), shards[i]);
        ASSERT_TRUE(reply.has_value() && reply->ok);
    }
    client->stop();
    daemon.join();
    EXPECT_GE(daemon.server().stats().deltas, 3u);

    core::IOCov folded(trace::FilterConfig::mount_point("/mnt/test"));
    std::size_t loaded = 0;
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(delta_dir))
        files.push_back(e.path());
    for (const auto& f : files) {
        core::SnapshotError err;
        const auto snap = core::load_snapshot_file(f.string(), &err);
        ASSERT_TRUE(snap.has_value()) << f << ": " << err.to_string();
        EXPECT_EQ(snap->label, "unit");
        folded.merge(*snap);
        ++loaded;
    }
    EXPECT_GE(loaded, 3u);
    EXPECT_EQ(report_text(folded.report()), want)
        << "merging every delta must reproduce the full state";
}

TEST_F(Serve, CheckpointRestartRepushConvergesToUninterruptedReport) {
    std::vector<std::string> shards;
    for (std::uint64_t s = 0; s < 6; ++s) shards.push_back(make_shard(s));
    const auto want = batch_report(shards);
    const auto ck = path("serve.iock");

    // First incarnation: checkpoint after every push, "crash" (destroy
    // without graceful finalize is closest we can get in-process; the
    // checkpoint written after push N is the recovery point).
    {
        core::LiveCoverage live;
        ServeOptions opts;
        opts.unix_path = path("sock");
        opts.checkpoint_path = ck;
        opts.checkpoint_every = 1;
        DaemonFixture daemon(live, opts);
        ASSERT_EQ(daemon.start_status(), std::nullopt);
        Endpoint ep;
        ep.unix_path = path("sock");
        auto client = Client::connect(ep, 5000);
        ASSERT_TRUE(client.has_value());
        for (std::size_t i = 0; i < 3; ++i) {
            const auto reply =
                client->push("c" + std::to_string(i), shards[i]);
            ASSERT_TRUE(reply.has_value() && reply->ok);
        }
        daemon.server().request_stop();
        daemon.join();
        EXPECT_GE(daemon.server().stats().checkpoints, 3u);
    }
    ASSERT_TRUE(fs::exists(ck));

    // Second incarnation resumes; producers re-push *everything*.
    {
        core::LiveCoverage live;
        ServeOptions opts;
        opts.unix_path = path("sock");
        opts.checkpoint_path = ck;
        opts.resume = true;
        DaemonFixture daemon(live, opts);
        ASSERT_EQ(daemon.start_status(), std::nullopt)
            << daemon.start_status()->to_string();
        EXPECT_EQ(live.epoch(), 3u) << "restore must land at the "
                                       "checkpointed epoch";
        Endpoint ep;
        ep.unix_path = path("sock");
        auto client = Client::connect(ep, 5000);
        ASSERT_TRUE(client.has_value());
        std::uint64_t dups = 0;
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const auto reply =
                client->push("c" + std::to_string(i), shards[i]);
            ASSERT_TRUE(reply.has_value() && reply->ok);
            if (reply->text.find("duplicate") != std::string::npos) ++dups;
        }
        EXPECT_EQ(dups, 3u);
        const auto reply = client->query("report");
        ASSERT_TRUE(reply.has_value() && reply->ok);
        EXPECT_EQ(reply->text, want)
            << "kill + resume + re-push must converge bit-identically";
        client->stop();
        daemon.join();
    }
}

TEST_F(Serve, InjectedSocketErrnosDegradeConnectionsNotTheDaemon) {
    core::LiveCoverage live;
    ServeOptions opts;
    opts.unix_path = path("sock");
    DaemonFixture daemon(live, opts);
    ASSERT_EQ(daemon.start_status(), std::nullopt);

    // Every 3rd sock-read in this *process* fails with ECONNRESET —
    // client and daemon share the hook, so both sides see chaos.
    ASSERT_EQ(host::FaultHook::configure("errno:sock-read:ECONNRESET:3"),
              std::nullopt);
    Endpoint ep;
    ep.unix_path = path("sock");
    const auto shard = make_shard(8);
    std::size_t delivered = 0;
    for (int i = 0; i < 6; ++i) {
        auto client = Client::connect(ep, 5000);
        if (!client) continue;
        const auto reply =
            client->push("e" + std::to_string(i), shard);
        if (reply && reply->ok) ++delivered;
    }
    host::FaultHook::reset();
    EXPECT_GT(delivered, 0u) << "some pushes must survive the sweep";

    // The daemon is still fully functional and its state matches a
    // batch over exactly the delivered shards.
    auto client = Client::connect(ep, 5000);
    ASSERT_TRUE(client.has_value());
    const auto reply = client->query("report");
    ASSERT_TRUE(reply.has_value() && reply->ok);
    // A push can land server-side while its *ack* is the read that
    // failed, so the daemon may hold more shards than we saw confirmed.
    EXPECT_GE(reply->epoch, delivered);
    std::vector<std::string> got(
        static_cast<std::size_t>(reply->epoch), shard);
    EXPECT_EQ(reply->text, batch_report(got));
    client->stop();
    daemon.join();
}

}  // namespace
}  // namespace iocov::serve
