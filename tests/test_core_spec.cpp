// Syscall registry + variant handler.
#include <gtest/gtest.h>

#include "abi/fcntl.hpp"
#include "core/syscall_spec.hpp"
#include "core/variant_handler.hpp"

namespace iocov::core {
namespace {

TEST(SyscallSpec, PaperTotals) {
    // "27 syscalls, including 11 base syscalls ... 14 distinct arguments"
    EXPECT_EQ(syscall_registry().size(), 11u);
    EXPECT_EQ(tracked_variant_count(), 27u);
    EXPECT_EQ(tracked_argument_count(), 14u);
}

TEST(SyscallSpec, ElevenBaseSyscallsMatchThePaperList) {
    const std::vector<std::string> expected = {
        "open",  "read",  "write", "lseek",    "truncate", "mkdir",
        "chmod", "close", "chdir", "setxattr", "getxattr"};
    ASSERT_EQ(syscall_registry().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(syscall_registry()[i].base, expected[i]);
}

TEST(SyscallSpec, VariantLookup) {
    EXPECT_EQ(*base_of_variant("openat2"), "open");
    EXPECT_EQ(*base_of_variant("creat"), "open");
    EXPECT_EQ(*base_of_variant("pwrite64"), "write");
    EXPECT_EQ(*base_of_variant("fchdir"), "chdir");
    EXPECT_EQ(*base_of_variant("lgetxattr"), "getxattr");
    EXPECT_FALSE(base_of_variant("rename").has_value());
    EXPECT_FALSE(base_of_variant("fsync").has_value());
}

TEST(SyscallSpec, FindSpecAndErrorLists) {
    const auto* open_spec = find_spec("open");
    ASSERT_NE(open_spec, nullptr);
    EXPECT_EQ(open_spec->errors.size(), 27u);  // Fig. 4's 27 error codes
    EXPECT_EQ(open_spec->success, SuccessKind::NewFd);
    const auto* write_spec = find_spec("write");
    EXPECT_EQ(write_spec->success, SuccessKind::ByteCount);
    EXPECT_EQ(find_spec("bogus"), nullptr);
}

TEST(SyscallSpec, ArgClassesMatchThePaperTaxonomy) {
    auto cls_of = [](const char* base, const char* key) {
        for (const auto& a : find_spec(base)->args)
            if (a.key == key) return a.cls;
        return ArgClass::Identifier;
    };
    EXPECT_EQ(cls_of("open", "flags"), ArgClass::Bitmap);
    EXPECT_EQ(cls_of("open", "mode"), ArgClass::Bitmap);
    EXPECT_EQ(cls_of("write", "count"), ArgClass::Numeric);
    EXPECT_EQ(cls_of("lseek", "whence"), ArgClass::Categorical);
    EXPECT_EQ(cls_of("close", "fd"), ArgClass::Identifier);
    EXPECT_EQ(cls_of("chdir", "pathname"), ArgClass::Identifier);
    EXPECT_EQ(cls_of("setxattr", "flags"), ArgClass::Categorical);
}

trace::TraceEvent make_event(const char* syscall) {
    trace::TraceEvent ev;
    ev.syscall = syscall;
    ev.ret = 0;
    return ev;
}

TEST(VariantHandler, MapsVariantsToBases) {
    auto ce = canonicalize(make_event("pread64"));
    ASSERT_TRUE(ce.has_value());
    EXPECT_EQ(ce->base, "read");
    EXPECT_EQ(ce->variant, "pread64");
}

TEST(VariantHandler, UntrackedSyscallsReturnNullopt) {
    EXPECT_FALSE(canonicalize(make_event("rename")).has_value());
    EXPECT_FALSE(canonicalize(make_event("fsync")).has_value());
    EXPECT_FALSE(canonicalize(make_event("")).has_value());
}

TEST(VariantHandler, CreatSynthesizesImplicitFlags) {
    auto ev = make_event("creat");
    ev.args = {{"pathname", trace::ArgValue{std::string("/mnt/test/f")}},
               {"mode", trace::ArgValue{std::uint64_t{0644}}}};
    auto ce = canonicalize(ev);
    ASSERT_TRUE(ce.has_value());
    auto flags = ce->arg("flags");
    ASSERT_TRUE(flags.has_value());
    EXPECT_EQ(std::get<std::uint64_t>(*flags),
              abi::O_CREAT | abi::O_WRONLY | abi::O_TRUNC);
}

TEST(VariantHandler, FchdirSynthesizesViaFdIdentifier) {
    auto ev = make_event("fchdir");
    ev.args = {{"fd", trace::ArgValue{std::int64_t{5}}}};
    auto ce = canonicalize(ev);
    ASSERT_TRUE(ce.has_value());
    EXPECT_EQ(ce->base, "chdir");
    auto path = ce->arg("pathname");
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(std::get<std::string>(*path), "<via-fd>");
}

TEST(VariantHandler, ArgLookupFallsThroughToOriginalArgs) {
    auto ev = make_event("write");
    ev.args = {{"fd", trace::ArgValue{std::int64_t{4}}},
               {"count", trace::ArgValue{std::uint64_t{512}}}};
    auto ce = canonicalize(ev);
    ASSERT_TRUE(ce.has_value());
    EXPECT_EQ(std::get<std::uint64_t>(*ce->arg("count")), 512u);
    EXPECT_FALSE(ce->arg("missing").has_value());
}

}  // namespace
}  // namespace iocov::core
