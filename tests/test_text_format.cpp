#include "trace/text_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace iocov::trace {
namespace {

TraceEvent sample_event() {
    TraceEvent ev;
    ev.seq = 17;
    ev.pid = 1201;
    ev.tid = 1201;
    ev.syscall = "openat";
    ev.args = {{"dfd", ArgValue{std::int64_t{-100}}},
               {"pathname", ArgValue{std::string("/mnt/test/f0")}},
               {"flags", ArgValue{std::uint64_t{0241}}},
               {"mode", ArgValue{std::uint64_t{0644}}}};
    ev.ret = 3;
    return ev;
}

TEST(TextFormat, FormatsLttngStyleLine) {
    const auto line = format_event(sample_event());
    EXPECT_EQ(line,
              "[000000017] pid=1201 tid=1201 openat: dfd=-100, "
              "pathname=\"/mnt/test/f0\", flags=0xa1, mode=0x1a4 = 3");
}

TEST(TextFormat, RoundTripsSampleEvent) {
    const auto ev = sample_event();
    const auto parsed = parse_event(format_event(ev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ev);
}

TEST(TextFormat, RoundTripsEventWithoutArgs) {
    TraceEvent ev;
    ev.seq = 1;
    ev.pid = 7;
    ev.tid = 7;
    ev.syscall = "sync";
    ev.ret = 0;
    const auto parsed = parse_event(format_event(ev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ev);
}

TEST(TextFormat, RoundTripsNegativeReturn) {
    auto ev = sample_event();
    ev.ret = -2;  // -ENOENT
    const auto parsed = parse_event(format_event(ev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->ret, -2);
}

TEST(TextFormat, EscapesSpecialCharactersInStrings) {
    TraceEvent ev;
    ev.syscall = "open";
    ev.args = {{"pathname",
                ArgValue{std::string("/mnt/test/we\"ird\\name\n\t")}}};
    ev.ret = -2;
    const auto parsed = parse_event(format_event(ev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ev);
}

TEST(TextFormat, StringWithCommaAndEqualsSurvives) {
    TraceEvent ev;
    ev.syscall = "open";
    ev.args = {{"pathname", ArgValue{std::string("/mnt/a=b, c")}}};
    ev.ret = 4;
    const auto parsed = parse_event(format_event(ev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ev);
}

TEST(TextFormat, ParserRejectsMalformedLines) {
    EXPECT_FALSE(parse_event(""));
    EXPECT_FALSE(parse_event("garbage"));
    EXPECT_FALSE(parse_event("[x] pid=1 tid=1 open: = 0"));
    EXPECT_FALSE(parse_event("[1] pid=1 tid=1 open: fd=notanumber = 0"));
    EXPECT_FALSE(parse_event("[1] pid=1 tid=1 open: fd=1"));  // no ret
    EXPECT_FALSE(parse_event("[1] pid=1 open: = 0"));         // no tid
    EXPECT_FALSE(
        parse_event("[1] pid=1 tid=1 open: = 0 trailing"));   // junk tail
}

TEST(TextFormat, ParserRejectsOverflowingNumericFields) {
    // Over-long numbers in a torn trace must drop the line, never wrap
    // into a plausible value.  2^64 and 2^64-flavored hex overflows:
    EXPECT_FALSE(
        parse_event("[18446744073709551616] pid=1 tid=1 open: = 0"));
    EXPECT_FALSE(parse_event("[1] pid=4294967296 tid=1 open: = 0"));
    EXPECT_FALSE(parse_event("[1] pid=1 tid=4294967296 open: = 0"));
    EXPECT_FALSE(parse_event(
        "[1] pid=1 tid=1 open: flags=0xffffffffffffffff1 = 0"));
    EXPECT_FALSE(parse_event(
        "[1] pid=1 tid=1 open: size=99999999999999999999999999 = 0"));
    EXPECT_FALSE(
        parse_event("[1] pid=1 tid=1 open: = 99999999999999999999"));
    // The extremes themselves still parse (no off-by-one rejection).
    const auto max_ok = parse_event(
        "[18446744073709551615] pid=4294967295 tid=4294967295 open: "
        "flags=0xffffffffffffffff = 0");
    ASSERT_TRUE(max_ok.has_value());
    EXPECT_EQ(max_ok->seq, std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(*max_ok->uint_arg("flags"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(TextFormat, EveryTruncationOfAValidLineIsRejected) {
    const auto line = format_event(sample_event());
    for (std::size_t cut = 0; cut < line.size(); ++cut)
        EXPECT_FALSE(parse_event(line.substr(0, cut)))
            << "prefix of length " << cut << " parsed";
}

TEST(TextFormat, ParserRejectsUnterminatedString) {
    EXPECT_FALSE(
        parse_event("[1] pid=1 tid=1 open: pathname=\"/mnt = 0"));
}

TEST(TextFormat, StreamParsingSkipsCommentsAndCountsDrops) {
    std::stringstream ss;
    ss << "# a comment\n";
    ss << format_event(sample_event()) << "\n";
    ss << "torn line\n";
    ss << "\n";
    ss << format_event(sample_event()) << "\n";
    std::size_t dropped = 0;
    const auto events = parse_stream(ss, &dropped);
    EXPECT_EQ(events.size(), 2u);
    EXPECT_EQ(dropped, 1u);
}

TEST(TextFormat, DiagnosticsCarryLinePositionAndReason) {
    std::stringstream ss;
    ss << format_event(sample_event()) << "\n";    // line 1, ok
    ss << "# comment\n";                           // line 2, not a drop
    ss << "[x] broken\n";                          // line 3, drop
    ss << format_event(sample_event()) << "\n";    // line 4, ok
    ss << "another bad line\n";                    // line 5, drop
    const std::string text = ss.str();
    std::size_t dropped = 0;
    ParseDiagnostics diags;
    parse_stream(ss, &dropped, &diags);
    EXPECT_EQ(dropped, 2u);
    ASSERT_EQ(diags.entries().size(), 2u);
    EXPECT_EQ(diags.entries()[0].line, 3u);
    EXPECT_EQ(diags.entries()[0].excerpt, "[x] broken");
    EXPECT_EQ(diags.entries()[0].reason, "bad sequence number");
    EXPECT_EQ(diags.entries()[1].line, 5u);
    EXPECT_EQ(text.substr(static_cast<std::size_t>(
                              diags.entries()[1].offset),
                          16),
              "another bad line");
}

TEST(TextFormat, DiagnosticsRetainFirstKVerbatimAndCountTheRest) {
    std::stringstream ss;
    const std::size_t kBad = ParseDiagnostics::kDefaultMaxRetained + 4;
    for (std::size_t i = 0; i < kBad; ++i)
        ss << "bad line number " << i << "\n";
    std::size_t dropped = 0;
    ParseDiagnostics diags;
    parse_stream(ss, &dropped, &diags);
    EXPECT_EQ(dropped, kBad);
    EXPECT_EQ(diags.total(), kBad);
    ASSERT_EQ(diags.entries().size(), ParseDiagnostics::kDefaultMaxRetained);
    for (std::size_t i = 0; i < diags.entries().size(); ++i) {
        EXPECT_EQ(diags.entries()[i].line, i + 1);
        EXPECT_EQ(diags.entries()[i].excerpt,
                  "bad line number " + std::to_string(i));
    }
    EXPECT_NE(diags.to_string().find("and 4 more"), std::string::npos);
}

TEST(TextFormat, DiagnosticsClipLongExcerpts) {
    ParseDiagnostics diags;
    diags.record(1, 0, "why", std::string(1000, 'x'));
    ASSERT_EQ(diags.entries().size(), 1u);
    EXPECT_EQ(diags.entries()[0].excerpt.size(),
              ParseDiagnostics::kExcerptBytes);
}

TEST(TextFormat, DiagnosticsMergeRestoresInputOrder) {
    ParseDiagnostics a, b;
    a.record(10, 100, "r10");
    a.record(30, 300, "r30");
    b.record(20, 200, "r20");
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    ASSERT_EQ(a.entries().size(), 3u);
    EXPECT_EQ(a.entries()[0].reason, "r10");
    EXPECT_EQ(a.entries()[1].reason, "r20");
    EXPECT_EQ(a.entries()[2].reason, "r30");
}

TEST(TextFormat, ParseChunkPositionsDiagnosticsAbsolutely) {
    const std::string chunk = "bad one\nbad two\n";
    std::size_t dropped = 0;
    ParseDiagnostics diags;
    parse_chunk(chunk, &dropped, &diags, /*first_line=*/41,
                /*base_offset=*/5000);
    EXPECT_EQ(dropped, 2u);
    ASSERT_EQ(diags.entries().size(), 2u);
    EXPECT_EQ(diags.entries()[0].line, 41u);
    EXPECT_EQ(diags.entries()[0].offset, 5000u);
    EXPECT_EQ(diags.entries()[1].line, 42u);
    EXPECT_EQ(diags.entries()[1].offset, 5008u);
}

TEST(EscapeString, InverseOfUnescape) {
    const std::string raw = "a\"b\\c\nd\te";
    const auto unescaped = unescape_string(escape_string(raw));
    ASSERT_TRUE(unescaped.has_value());
    EXPECT_EQ(*unescaped, raw);
}

TEST(UnescapeString, RejectsBadEscapes) {
    EXPECT_FALSE(unescape_string("trailing\\"));
    EXPECT_FALSE(unescape_string("bad\\q"));
}

// Property: round-trip holds across arg-type combinations.
struct RoundTripCase {
    const char* name;
    ArgValue value;
};

class TextRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(TextRoundTrip, SingleArgRoundTrips) {
    TraceEvent ev;
    ev.seq = 99;
    ev.pid = 1;
    ev.tid = 2;
    ev.syscall = "probe";
    ev.args = {{GetParam().name, GetParam().value}};
    ev.ret = -22;
    const auto parsed = parse_event(format_event(ev));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ev);
}

INSTANTIATE_TEST_SUITE_P(
    Values, TextRoundTrip,
    ::testing::Values(
        RoundTripCase{"i0", ArgValue{std::int64_t{0}}},
        RoundTripCase{"imin",
                      ArgValue{std::numeric_limits<std::int64_t>::min()}},
        RoundTripCase{"imax",
                      ArgValue{std::numeric_limits<std::int64_t>::max()}},
        RoundTripCase{"u0", ArgValue{std::uint64_t{0}}},
        RoundTripCase{"umax",
                      ArgValue{std::numeric_limits<std::uint64_t>::max()}},
        RoundTripCase{"empty", ArgValue{std::string()}},
        RoundTripCase{"plain", ArgValue{std::string("abc")}},
        RoundTripCase{"quoted", ArgValue{std::string("\"\"")}},
        RoundTripCase{"slashes", ArgValue{std::string("\\\\n")}}));

}  // namespace
}  // namespace iocov::trace
