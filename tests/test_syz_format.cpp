#include "trace/syz_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "abi/fcntl.hpp"
#include "core/iocov.hpp"

namespace iocov::trace {
namespace {

std::optional<TraceEvent> parse_one(const std::string& line) {
    std::vector<std::string> resources;
    return parse_syz_line(line, &resources);
}

TEST(SyzParser, ParsesOpenatWithResultBinding) {
    std::vector<std::string> resources;
    auto ev = parse_syz_line(
        "r0 = openat(0xffffffffffffff9c, "
        "&(0x7f0000000000)='./file0\\x00', 0x42, 0x1ff)",
        &resources);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->syscall, "openat");
    EXPECT_EQ(*ev->int_arg("dfd"), abi::AT_FDCWD);  // 0xff..9c wraps to -100
    EXPECT_EQ(*ev->str_arg("pathname"), "./file0");
    EXPECT_EQ(*ev->uint_arg("flags"), 0x42u);
    EXPECT_EQ(*ev->uint_arg("mode"), 0x1ffu);
    EXPECT_TRUE(is_input_only(*ev));
    EXPECT_EQ(resources, std::vector<std::string>{"r0"});
}

TEST(SyzParser, ResourceReferencesBecomeFds) {
    std::vector<std::string> resources;
    parse_syz_line("r0 = open(&(0x7f0000000000)='./f\\x00', 0x0, 0x0)",
                   &resources);
    auto write = parse_syz_line("write(r0, &(0x7f0000000040), 0x1000)",
                                &resources);
    ASSERT_TRUE(write.has_value());
    EXPECT_EQ(*write->int_arg("fd"), 3);  // first resource -> fd 3
    EXPECT_EQ(*write->uint_arg("count"), 0x1000u);
    auto close = parse_syz_line("close(r0)", &resources);
    ASSERT_TRUE(close.has_value());
    EXPECT_EQ(*close->int_arg("fd"), 3);
}

TEST(SyzParser, SecondResourceGetsNextFd) {
    std::vector<std::string> resources;
    parse_syz_line("r0 = open(&(0x7f0000000000)='./a\\x00', 0x0, 0x0)",
                   &resources);
    parse_syz_line("r1 = open(&(0x7f0000000000)='./b\\x00', 0x0, 0x0)",
                   &resources);
    auto ev = parse_syz_line("ftruncate(r1, 0x100)", &resources);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev->int_arg("fd"), 4);
}

TEST(SyzParser, NilPointerBecomesFaultingPath) {
    auto ev = parse_one("open(0x0, 0x0, 0x0)");
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev->str_arg("pathname"), "<fault>");
}

TEST(SyzParser, BlobPointerIsElided) {
    auto ev = parse_one("write(0x3, &(0x7f0000000040), 0x200)");
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev->uint_arg("count"), 0x200u);
    EXPECT_FALSE(ev->find_arg("buf"));
}

TEST(SyzParser, Openat2StructExpands) {
    auto ev = parse_one(
        "openat2(0xffffffffffffff9c, &(0x7f0000000000)='./f\\x00', "
        "&(0x7f0000000040)={0x42, 0x1a4, 0x8}, 0x18)");
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev->uint_arg("flags"), 0x42u);
    EXPECT_EQ(*ev->uint_arg("mode"), 0x1a4u);
    EXPECT_EQ(*ev->uint_arg("resolve"), 0x8u);
    EXPECT_EQ(*ev->uint_arg("usize"), 0x18u);
}

TEST(SyzParser, StringEscapesAndNulPadding) {
    auto ev = parse_one(
        "chdir(&(0x7f0000000000)='./dir with space\\x00\\x00\\x00')");
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev->str_arg("pathname"), "./dir with space");
}

TEST(SyzParser, AutoConstantsAndDecimalNumbers) {
    auto ev = parse_one("lseek(0x3, 512, AUTO)");
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev->int_arg("offset"), 512);
    EXPECT_EQ(*ev->int_arg("whence"), 0);
}

TEST(SyzParser, SkipsCommentsBlanksAndUnknownSyscalls) {
    EXPECT_FALSE(parse_one(""));
    EXPECT_FALSE(parse_one("# a comment"));
    EXPECT_FALSE(parse_one("mmap(&(0x7f0000000000), 0x1000, 0x3)"));
    EXPECT_FALSE(parse_one("not a line at all"));
}

TEST(SyzParser, ProgramLevelParsing) {
    std::stringstream prog;
    prog << "# fs workload\n"
         << "r0 = openat(0xffffffffffffff9c, "
            "&(0x7f0000000000)='./file0\\x00', 0x42, 0x1ff)\n"
         << "write(r0, &(0x7f0000000040), 0x10000)\n"
         << "mmap(&(0x7f0000000000), 0x1000)\n"  // unsupported: skipped
         << "close(r0)\n";
    SyzParseStats stats;
    const auto events = parse_syz_program(prog, &stats);
    EXPECT_EQ(stats.lines, 5u);
    EXPECT_EQ(stats.parsed, 3u);
    EXPECT_EQ(stats.skipped, 2u);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[2].seq, 2u);
}

TEST(SyzParser, FeedsInputCoverageButNotOutputCoverage) {
    std::stringstream prog;
    prog << "r0 = open(&(0x7f0000000000)='./f0\\x00', 0x8042, 0x1ff)\n"
         << "pwrite64(r0, &(0x7f0000000040), 0x100000, 0x0)\n"
         << "lseek(r0, 0x0, 0x4)\n"
         << "close(r0)\n";
    core::IOCov iocov;
    EXPECT_EQ(iocov.consume_syz(prog), 4u);
    const auto& r = iocov.report();
    // Inputs counted — including O_LARGEFILE (0x8000), which the
    // simulated hand-written suites never touch.
    EXPECT_EQ(r.find_input("open", "flags")->hist.count("O_LARGEFILE"), 1u);
    EXPECT_EQ(r.find_input("write", "count")->hist.count("2^20"), 1u);
    EXPECT_EQ(r.find_input("lseek", "whence")->hist.count("SEEK_HOLE"), 1u);
    EXPECT_EQ(r.find_input("close", "fd")->hist.count("valid(>=3)"), 1u);
    // Outputs untouched: declarative programs have no return values.
    EXPECT_EQ(r.find_output("open")->hist.total(), 0u);
    EXPECT_EQ(r.find_output("write")->hist.total(), 0u);
}

}  // namespace
}  // namespace iocov::trace
