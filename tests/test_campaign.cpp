// Fault-space exploration campaigns: errno output partitions a
// fault-free run provably cannot reach, faithfulness of injected
// errnos, fsck after every run, and bounded-sweep semantics.
#include "testers/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "abi/errno.hpp"

namespace iocov::testers {
namespace {

using abi::Err;

CampaignConfig small_config() {
    CampaignConfig cfg;
    cfg.suite = "crashmonkey";
    cfg.scale = 0.002;
    cfg.chaos_runs = 1;
    return cfg;
}

const char* const kEnvironmental[] = {"EIO", "ENOMEM", "EINTR", "ENOSPC"};

std::uint64_t errno_partition_hits(const core::CoverageReport& report,
                                   const char* label) {
    std::uint64_t hits = 0;
    for (const auto& out : report.outputs) hits += out.hist.count(label);
    return hits;
}

TEST(Campaign, EnvironmentalErrnosUnreachableWithoutFaults) {
    // The regression half of the paper's argument: no amount of
    // argument construction produces EIO/ENOMEM/EINTR — the baseline
    // run must leave those output partitions completely empty.
    const auto result = run_campaign(small_config());
    for (const char* label : kEnvironmental)
        EXPECT_EQ(errno_partition_hits(result.baseline, label), 0u)
            << label << " reached without fault injection";
}

TEST(Campaign, SweepReachesEveryEnvironmentalErrnoAndStaysClean) {
    const auto result = run_campaign(small_config());

    // Every systematic point fired: skip targets are drawn from the
    // baseline's own occurrence counts, so the k-th occurrence always
    // exists in the (deterministic) replay.
    for (const auto& run : result.runs) {
        if (run.probabilistic) continue;
        EXPECT_GE(run.fired, 1u) << run.point.op;
    }

    // Properties 2 and 3: injected errnos surfaced faithfully, and no
    // injected fault corrupted file-system metadata.
    EXPECT_EQ(result.unfaithful_runs, 0u);
    EXPECT_EQ(result.fsck_violations, 0u) << result.summary();
    EXPECT_EQ(result.baseline_fsck_violations, 0u);
    EXPECT_TRUE(result.clean());

    // The campaign's purpose: the aggregate reaches all four
    // environmental errnos the baseline provably cannot.
    for (const char* label : kEnvironmental)
        EXPECT_GT(errno_partition_hits(result.aggregate, label), 0u)
            << label << " never reached by the sweep";
    EXPECT_FALSE(result.new_output_partitions.empty());
    const auto& fresh = result.new_output_partitions;
    EXPECT_NE(std::find(fresh.begin(), fresh.end(), "open:EIO"),
              fresh.end());

    // Aggregate = baseline + injected runs, so it strictly dominates.
    EXPECT_GT(result.aggregate.events_seen, result.baseline.events_seen);
}

TEST(Campaign, DeterministicForAFixedConfig) {
    const auto a = run_campaign(small_config());
    const auto b = run_campaign(small_config());
    EXPECT_EQ(a.aggregate, b.aggregate);
    EXPECT_EQ(a.new_output_partitions, b.new_output_partitions);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        EXPECT_EQ(a.runs[i].fired, b.runs[i].fired);
}

TEST(Campaign, BoundedSweepSubsamplesEvenly) {
    auto cfg = small_config();
    cfg.chaos_runs = 0;
    cfg.max_runs = 5;
    const auto result = run_campaign(cfg);
    EXPECT_GT(result.points_planned, 5u);
    EXPECT_EQ(result.sweep_runs, 5u);
    EXPECT_EQ(result.runs.size(), 5u);
    // Even subsampling spans distinct ops, not a prefix of one op.
    EXPECT_NE(result.runs.front().point.op, result.runs.back().point.op);
}

TEST(Campaign, ChaosRunsAreSeededAndAccounted) {
    auto cfg = small_config();
    cfg.max_runs = 1;  // keep the systematic part minimal
    cfg.chaos_runs = 2;
    cfg.chaos_permille = 100;
    const auto result = run_campaign(cfg);
    EXPECT_EQ(result.chaos_runs, 2u);
    std::uint64_t chaos_fired = 0;
    for (const auto& run : result.runs)
        if (run.probabilistic) chaos_fired += run.fired;
    EXPECT_GT(chaos_fired, 0u);  // 10% per call over thousands of calls
    EXPECT_EQ(result.unfaithful_runs, 0u);
    EXPECT_EQ(result.fsck_violations, 0u) << result.summary();
}

TEST(Campaign, UnknownSuiteThrows) {
    auto cfg = small_config();
    cfg.suite = "nonesuch";
    EXPECT_THROW(run_campaign(cfg), std::invalid_argument);
}

TEST(Campaign, SummaryNamesVerdictAndNewPartitions) {
    const auto result = run_campaign(small_config());
    const auto text = result.summary();
    EXPECT_NE(text.find("CLEAN"), std::string::npos) << text;
    EXPECT_NE(text.find("open:EIO"), std::string::npos) << text;
}

}  // namespace
}  // namespace iocov::testers
