#include "vfs/path.hpp"

#include <gtest/gtest.h>

namespace iocov::vfs {
namespace {

TEST(SplitPath, BasicCases) {
    EXPECT_EQ(split_path("/a/b/c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split_path("a/b"), (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(split_path("/").empty());
    EXPECT_TRUE(split_path("").empty());
    EXPECT_TRUE(split_path("///").empty());
}

TEST(SplitPath, CollapsesDuplicateSlashes) {
    EXPECT_EQ(split_path("//a///b//"),
              (std::vector<std::string>{"a", "b"}));
}

TEST(SplitPath, KeepsDotComponents) {
    EXPECT_EQ(split_path("a//b/./.."),
              (std::vector<std::string>{"a", "b", ".", ".."}));
}

TEST(PathPredicates, AbsoluteAndTrailingSlash) {
    EXPECT_TRUE(is_absolute("/a"));
    EXPECT_FALSE(is_absolute("a"));
    EXPECT_FALSE(is_absolute(""));
    EXPECT_TRUE(has_trailing_slash("/a/"));
    EXPECT_TRUE(has_trailing_slash("a/"));
    EXPECT_FALSE(has_trailing_slash("/a"));
    EXPECT_FALSE(has_trailing_slash("/"));  // root is not "trailing"
}

TEST(JoinPath, Inverse) {
    EXPECT_EQ(join_path({"a", "b"}), "/a/b");
    EXPECT_EQ(join_path({}), "/");
}

}  // namespace
}  // namespace iocov::vfs
