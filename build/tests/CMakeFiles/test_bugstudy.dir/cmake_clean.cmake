file(REMOVE_RECURSE
  "CMakeFiles/test_bugstudy.dir/test_bugstudy.cpp.o"
  "CMakeFiles/test_bugstudy.dir/test_bugstudy.cpp.o.d"
  "test_bugstudy"
  "test_bugstudy.pdb"
  "test_bugstudy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bugstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
