file(REMOVE_RECURSE
  "CMakeFiles/test_testers.dir/test_testers.cpp.o"
  "CMakeFiles/test_testers.dir/test_testers.cpp.o.d"
  "test_testers"
  "test_testers.pdb"
  "test_testers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
