# Empty dependencies file for test_testers.
# This may be replaced when dependencies are built.
