file(REMOVE_RECURSE
  "CMakeFiles/test_vfs_fuzz.dir/test_vfs_fuzz.cpp.o"
  "CMakeFiles/test_vfs_fuzz.dir/test_vfs_fuzz.cpp.o.d"
  "test_vfs_fuzz"
  "test_vfs_fuzz.pdb"
  "test_vfs_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vfs_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
