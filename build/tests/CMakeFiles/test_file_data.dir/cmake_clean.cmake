file(REMOVE_RECURSE
  "CMakeFiles/test_file_data.dir/test_file_data.cpp.o"
  "CMakeFiles/test_file_data.dir/test_file_data.cpp.o.d"
  "test_file_data"
  "test_file_data.pdb"
  "test_file_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
