# Empty compiler generated dependencies file for test_core_partition.
# This may be replaced when dependencies are built.
