file(REMOVE_RECURSE
  "CMakeFiles/test_core_partition.dir/test_core_partition.cpp.o"
  "CMakeFiles/test_core_partition.dir/test_core_partition.cpp.o.d"
  "test_core_partition"
  "test_core_partition.pdb"
  "test_core_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
