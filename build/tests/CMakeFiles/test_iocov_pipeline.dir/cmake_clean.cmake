file(REMOVE_RECURSE
  "CMakeFiles/test_iocov_pipeline.dir/test_iocov_pipeline.cpp.o"
  "CMakeFiles/test_iocov_pipeline.dir/test_iocov_pipeline.cpp.o.d"
  "test_iocov_pipeline"
  "test_iocov_pipeline.pdb"
  "test_iocov_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iocov_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
