# Empty compiler generated dependencies file for test_iocov_pipeline.
# This may be replaced when dependencies are built.
