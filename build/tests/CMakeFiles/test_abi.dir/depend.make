# Empty dependencies file for test_abi.
# This may be replaced when dependencies are built.
