file(REMOVE_RECURSE
  "CMakeFiles/test_abi.dir/test_abi.cpp.o"
  "CMakeFiles/test_abi.dir/test_abi.cpp.o.d"
  "test_abi"
  "test_abi.pdb"
  "test_abi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
