# Empty compiler generated dependencies file for test_filesystem_io.
# This may be replaced when dependencies are built.
