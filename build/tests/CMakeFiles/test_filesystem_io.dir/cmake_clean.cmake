file(REMOVE_RECURSE
  "CMakeFiles/test_filesystem_io.dir/test_filesystem_io.cpp.o"
  "CMakeFiles/test_filesystem_io.dir/test_filesystem_io.cpp.o.d"
  "test_filesystem_io"
  "test_filesystem_io.pdb"
  "test_filesystem_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filesystem_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
