# Empty dependencies file for test_rmsd.
# This may be replaced when dependencies are built.
