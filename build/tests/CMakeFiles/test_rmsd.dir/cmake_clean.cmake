file(REMOVE_RECURSE
  "CMakeFiles/test_rmsd.dir/test_rmsd.cpp.o"
  "CMakeFiles/test_rmsd.dir/test_rmsd.cpp.o.d"
  "test_rmsd"
  "test_rmsd.pdb"
  "test_rmsd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
