# Empty dependencies file for test_syscall_fuzz.
# This may be replaced when dependencies are built.
