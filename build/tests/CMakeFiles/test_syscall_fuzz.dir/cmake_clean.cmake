file(REMOVE_RECURSE
  "CMakeFiles/test_syscall_fuzz.dir/test_syscall_fuzz.cpp.o"
  "CMakeFiles/test_syscall_fuzz.dir/test_syscall_fuzz.cpp.o.d"
  "test_syscall_fuzz"
  "test_syscall_fuzz.pdb"
  "test_syscall_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syscall_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
