file(REMOVE_RECURSE
  "CMakeFiles/test_combos.dir/test_combos.cpp.o"
  "CMakeFiles/test_combos.dir/test_combos.cpp.o.d"
  "test_combos"
  "test_combos.pdb"
  "test_combos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
