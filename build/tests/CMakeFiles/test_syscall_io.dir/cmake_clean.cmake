file(REMOVE_RECURSE
  "CMakeFiles/test_syscall_io.dir/test_syscall_io.cpp.o"
  "CMakeFiles/test_syscall_io.dir/test_syscall_io.cpp.o.d"
  "test_syscall_io"
  "test_syscall_io.pdb"
  "test_syscall_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syscall_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
