# Empty compiler generated dependencies file for test_syscall_io.
# This may be replaced when dependencies are built.
