# Empty dependencies file for test_log_bucket.
# This may be replaced when dependencies are built.
