file(REMOVE_RECURSE
  "CMakeFiles/test_log_bucket.dir/test_log_bucket.cpp.o"
  "CMakeFiles/test_log_bucket.dir/test_log_bucket.cpp.o.d"
  "test_log_bucket"
  "test_log_bucket.pdb"
  "test_log_bucket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
