file(REMOVE_RECURSE
  "CMakeFiles/test_syz_format.dir/test_syz_format.cpp.o"
  "CMakeFiles/test_syz_format.dir/test_syz_format.cpp.o.d"
  "test_syz_format"
  "test_syz_format.pdb"
  "test_syz_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syz_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
