# Empty dependencies file for test_extended_registry.
# This may be replaced when dependencies are built.
