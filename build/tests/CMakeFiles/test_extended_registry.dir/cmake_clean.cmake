file(REMOVE_RECURSE
  "CMakeFiles/test_extended_registry.dir/test_extended_registry.cpp.o"
  "CMakeFiles/test_extended_registry.dir/test_extended_registry.cpp.o.d"
  "test_extended_registry"
  "test_extended_registry.pdb"
  "test_extended_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
