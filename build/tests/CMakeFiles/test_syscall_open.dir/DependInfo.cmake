
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_syscall_open.cpp" "tests/CMakeFiles/test_syscall_open.dir/test_syscall_open.cpp.o" "gcc" "tests/CMakeFiles/test_syscall_open.dir/test_syscall_open.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/iocov_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/abi/CMakeFiles/iocov_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iocov_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/iocov_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/syscall/CMakeFiles/iocov_syscall.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iocov_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testers/CMakeFiles/iocov_testers.dir/DependInfo.cmake"
  "/root/repo/build/src/bugstudy/CMakeFiles/iocov_bugstudy.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/iocov_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
