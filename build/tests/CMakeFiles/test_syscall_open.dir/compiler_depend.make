# Empty compiler generated dependencies file for test_syscall_open.
# This may be replaced when dependencies are built.
