file(REMOVE_RECURSE
  "CMakeFiles/test_syscall_open.dir/test_syscall_open.cpp.o"
  "CMakeFiles/test_syscall_open.dir/test_syscall_open.cpp.o.d"
  "test_syscall_open"
  "test_syscall_open.pdb"
  "test_syscall_open[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syscall_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
