# Empty compiler generated dependencies file for test_syscall_xattr.
# This may be replaced when dependencies are built.
