file(REMOVE_RECURSE
  "CMakeFiles/test_syscall_xattr.dir/test_syscall_xattr.cpp.o"
  "CMakeFiles/test_syscall_xattr.dir/test_syscall_xattr.cpp.o.d"
  "test_syscall_xattr"
  "test_syscall_xattr.pdb"
  "test_syscall_xattr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syscall_xattr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
