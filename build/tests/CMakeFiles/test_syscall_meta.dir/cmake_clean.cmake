file(REMOVE_RECURSE
  "CMakeFiles/test_syscall_meta.dir/test_syscall_meta.cpp.o"
  "CMakeFiles/test_syscall_meta.dir/test_syscall_meta.cpp.o.d"
  "test_syscall_meta"
  "test_syscall_meta.pdb"
  "test_syscall_meta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syscall_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
