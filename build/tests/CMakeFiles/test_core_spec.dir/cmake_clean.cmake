file(REMOVE_RECURSE
  "CMakeFiles/test_core_spec.dir/test_core_spec.cpp.o"
  "CMakeFiles/test_core_spec.dir/test_core_spec.cpp.o.d"
  "test_core_spec"
  "test_core_spec.pdb"
  "test_core_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
