# Empty dependencies file for test_core_spec.
# This may be replaced when dependencies are built.
