file(REMOVE_RECURSE
  "CMakeFiles/test_tcd_properties.dir/test_tcd_properties.cpp.o"
  "CMakeFiles/test_tcd_properties.dir/test_tcd_properties.cpp.o.d"
  "test_tcd_properties"
  "test_tcd_properties.pdb"
  "test_tcd_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcd_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
