# Empty compiler generated dependencies file for test_core_coverage.
# This may be replaced when dependencies are built.
