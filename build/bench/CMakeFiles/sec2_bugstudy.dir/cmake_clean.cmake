file(REMOVE_RECURSE
  "CMakeFiles/sec2_bugstudy.dir/sec2_bugstudy.cpp.o"
  "CMakeFiles/sec2_bugstudy.dir/sec2_bugstudy.cpp.o.d"
  "sec2_bugstudy"
  "sec2_bugstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_bugstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
