# Empty dependencies file for sec2_bugstudy.
# This may be replaced when dependencies are built.
