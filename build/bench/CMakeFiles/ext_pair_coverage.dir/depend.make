# Empty dependencies file for ext_pair_coverage.
# This may be replaced when dependencies are built.
