file(REMOVE_RECURSE
  "CMakeFiles/ext_pair_coverage.dir/ext_pair_coverage.cpp.o"
  "CMakeFiles/ext_pair_coverage.dir/ext_pair_coverage.cpp.o.d"
  "ext_pair_coverage"
  "ext_pair_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pair_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
