file(REMOVE_RECURSE
  "CMakeFiles/ablation_tcd_domain.dir/ablation_tcd_domain.cpp.o"
  "CMakeFiles/ablation_tcd_domain.dir/ablation_tcd_domain.cpp.o.d"
  "ablation_tcd_domain"
  "ablation_tcd_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcd_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
