# Empty dependencies file for ablation_tcd_domain.
# This may be replaced when dependencies are built.
