# Empty compiler generated dependencies file for fig4_output_coverage.
# This may be replaced when dependencies are built.
