file(REMOVE_RECURSE
  "CMakeFiles/fig4_output_coverage.dir/fig4_output_coverage.cpp.o"
  "CMakeFiles/fig4_output_coverage.dir/fig4_output_coverage.cpp.o.d"
  "fig4_output_coverage"
  "fig4_output_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_output_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
