file(REMOVE_RECURSE
  "CMakeFiles/fig3_write_sizes.dir/fig3_write_sizes.cpp.o"
  "CMakeFiles/fig3_write_sizes.dir/fig3_write_sizes.cpp.o.d"
  "fig3_write_sizes"
  "fig3_write_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_write_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
