# Empty compiler generated dependencies file for fig3_write_sizes.
# This may be replaced when dependencies are built.
