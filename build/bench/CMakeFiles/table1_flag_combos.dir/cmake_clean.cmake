file(REMOVE_RECURSE
  "CMakeFiles/table1_flag_combos.dir/table1_flag_combos.cpp.o"
  "CMakeFiles/table1_flag_combos.dir/table1_flag_combos.cpp.o.d"
  "table1_flag_combos"
  "table1_flag_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_flag_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
