# Empty dependencies file for table1_flag_combos.
# This may be replaced when dependencies are built.
