file(REMOVE_RECURSE
  "CMakeFiles/iocov_bench_common.dir/common.cpp.o"
  "CMakeFiles/iocov_bench_common.dir/common.cpp.o.d"
  "libiocov_bench_common.a"
  "libiocov_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
