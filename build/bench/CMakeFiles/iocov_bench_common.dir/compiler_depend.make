# Empty compiler generated dependencies file for iocov_bench_common.
# This may be replaced when dependencies are built.
