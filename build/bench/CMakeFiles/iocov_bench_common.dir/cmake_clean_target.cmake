file(REMOVE_RECURSE
  "libiocov_bench_common.a"
)
