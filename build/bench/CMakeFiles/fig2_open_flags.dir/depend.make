# Empty dependencies file for fig2_open_flags.
# This may be replaced when dependencies are built.
