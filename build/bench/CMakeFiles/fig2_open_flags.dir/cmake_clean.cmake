file(REMOVE_RECURSE
  "CMakeFiles/fig2_open_flags.dir/fig2_open_flags.cpp.o"
  "CMakeFiles/fig2_open_flags.dir/fig2_open_flags.cpp.o.d"
  "fig2_open_flags"
  "fig2_open_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_open_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
