file(REMOVE_RECURSE
  "CMakeFiles/fig5_tcd.dir/fig5_tcd.cpp.o"
  "CMakeFiles/fig5_tcd.dir/fig5_tcd.cpp.o.d"
  "fig5_tcd"
  "fig5_tcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
