# Empty compiler generated dependencies file for fig5_tcd.
# This may be replaced when dependencies are built.
