# Empty compiler generated dependencies file for iocov_cli.
# This may be replaced when dependencies are built.
