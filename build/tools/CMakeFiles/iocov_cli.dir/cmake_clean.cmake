file(REMOVE_RECURSE
  "CMakeFiles/iocov_cli.dir/iocov_cli.cpp.o"
  "CMakeFiles/iocov_cli.dir/iocov_cli.cpp.o.d"
  "iocov"
  "iocov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
