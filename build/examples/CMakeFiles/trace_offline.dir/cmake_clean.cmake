file(REMOVE_RECURSE
  "CMakeFiles/trace_offline.dir/trace_offline.cpp.o"
  "CMakeFiles/trace_offline.dir/trace_offline.cpp.o.d"
  "trace_offline"
  "trace_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
