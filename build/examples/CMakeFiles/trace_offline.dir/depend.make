# Empty dependencies file for trace_offline.
# This may be replaced when dependencies are built.
