file(REMOVE_RECURSE
  "CMakeFiles/compare_testers.dir/compare_testers.cpp.o"
  "CMakeFiles/compare_testers.dir/compare_testers.cpp.o.d"
  "compare_testers"
  "compare_testers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_testers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
