# Empty compiler generated dependencies file for compare_testers.
# This may be replaced when dependencies are built.
