file(REMOVE_RECURSE
  "CMakeFiles/coverage_diff.dir/coverage_diff.cpp.o"
  "CMakeFiles/coverage_diff.dir/coverage_diff.cpp.o.d"
  "coverage_diff"
  "coverage_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
