# Empty dependencies file for coverage_diff.
# This may be replaced when dependencies are built.
