file(REMOVE_RECURSE
  "CMakeFiles/diff_tester.dir/diff_tester.cpp.o"
  "CMakeFiles/diff_tester.dir/diff_tester.cpp.o.d"
  "diff_tester"
  "diff_tester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_tester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
