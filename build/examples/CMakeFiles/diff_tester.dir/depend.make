# Empty dependencies file for diff_tester.
# This may be replaced when dependencies are built.
