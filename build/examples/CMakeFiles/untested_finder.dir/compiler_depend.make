# Empty compiler generated dependencies file for untested_finder.
# This may be replaced when dependencies are built.
