file(REMOVE_RECURSE
  "CMakeFiles/untested_finder.dir/untested_finder.cpp.o"
  "CMakeFiles/untested_finder.dir/untested_finder.cpp.o.d"
  "untested_finder"
  "untested_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/untested_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
