file(REMOVE_RECURSE
  "CMakeFiles/fuzzer_coverage.dir/fuzzer_coverage.cpp.o"
  "CMakeFiles/fuzzer_coverage.dir/fuzzer_coverage.cpp.o.d"
  "fuzzer_coverage"
  "fuzzer_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzer_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
