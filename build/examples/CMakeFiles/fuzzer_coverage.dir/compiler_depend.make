# Empty compiler generated dependencies file for fuzzer_coverage.
# This may be replaced when dependencies are built.
