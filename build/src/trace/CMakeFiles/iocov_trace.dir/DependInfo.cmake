
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/iocov_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/iocov_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/filter.cpp" "src/trace/CMakeFiles/iocov_trace.dir/filter.cpp.o" "gcc" "src/trace/CMakeFiles/iocov_trace.dir/filter.cpp.o.d"
  "/root/repo/src/trace/sink.cpp" "src/trace/CMakeFiles/iocov_trace.dir/sink.cpp.o" "gcc" "src/trace/CMakeFiles/iocov_trace.dir/sink.cpp.o.d"
  "/root/repo/src/trace/syz_format.cpp" "src/trace/CMakeFiles/iocov_trace.dir/syz_format.cpp.o" "gcc" "src/trace/CMakeFiles/iocov_trace.dir/syz_format.cpp.o.d"
  "/root/repo/src/trace/text_format.cpp" "src/trace/CMakeFiles/iocov_trace.dir/text_format.cpp.o" "gcc" "src/trace/CMakeFiles/iocov_trace.dir/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
