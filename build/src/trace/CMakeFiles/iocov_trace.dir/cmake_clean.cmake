file(REMOVE_RECURSE
  "CMakeFiles/iocov_trace.dir/event.cpp.o"
  "CMakeFiles/iocov_trace.dir/event.cpp.o.d"
  "CMakeFiles/iocov_trace.dir/filter.cpp.o"
  "CMakeFiles/iocov_trace.dir/filter.cpp.o.d"
  "CMakeFiles/iocov_trace.dir/sink.cpp.o"
  "CMakeFiles/iocov_trace.dir/sink.cpp.o.d"
  "CMakeFiles/iocov_trace.dir/syz_format.cpp.o"
  "CMakeFiles/iocov_trace.dir/syz_format.cpp.o.d"
  "CMakeFiles/iocov_trace.dir/text_format.cpp.o"
  "CMakeFiles/iocov_trace.dir/text_format.cpp.o.d"
  "libiocov_trace.a"
  "libiocov_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
