# Empty dependencies file for iocov_trace.
# This may be replaced when dependencies are built.
