file(REMOVE_RECURSE
  "libiocov_trace.a"
)
