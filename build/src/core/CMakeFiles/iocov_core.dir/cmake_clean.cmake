file(REMOVE_RECURSE
  "CMakeFiles/iocov_core.dir/combos.cpp.o"
  "CMakeFiles/iocov_core.dir/combos.cpp.o.d"
  "CMakeFiles/iocov_core.dir/coverage.cpp.o"
  "CMakeFiles/iocov_core.dir/coverage.cpp.o.d"
  "CMakeFiles/iocov_core.dir/diff.cpp.o"
  "CMakeFiles/iocov_core.dir/diff.cpp.o.d"
  "CMakeFiles/iocov_core.dir/iocov.cpp.o"
  "CMakeFiles/iocov_core.dir/iocov.cpp.o.d"
  "CMakeFiles/iocov_core.dir/partition.cpp.o"
  "CMakeFiles/iocov_core.dir/partition.cpp.o.d"
  "CMakeFiles/iocov_core.dir/report_io.cpp.o"
  "CMakeFiles/iocov_core.dir/report_io.cpp.o.d"
  "CMakeFiles/iocov_core.dir/syscall_spec.cpp.o"
  "CMakeFiles/iocov_core.dir/syscall_spec.cpp.o.d"
  "CMakeFiles/iocov_core.dir/tcd.cpp.o"
  "CMakeFiles/iocov_core.dir/tcd.cpp.o.d"
  "CMakeFiles/iocov_core.dir/untested.cpp.o"
  "CMakeFiles/iocov_core.dir/untested.cpp.o.d"
  "CMakeFiles/iocov_core.dir/variant_handler.cpp.o"
  "CMakeFiles/iocov_core.dir/variant_handler.cpp.o.d"
  "libiocov_core.a"
  "libiocov_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
