# Empty dependencies file for iocov_core.
# This may be replaced when dependencies are built.
