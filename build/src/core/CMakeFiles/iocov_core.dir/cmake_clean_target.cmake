file(REMOVE_RECURSE
  "libiocov_core.a"
)
