
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combos.cpp" "src/core/CMakeFiles/iocov_core.dir/combos.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/combos.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/iocov_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/diff.cpp" "src/core/CMakeFiles/iocov_core.dir/diff.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/diff.cpp.o.d"
  "/root/repo/src/core/iocov.cpp" "src/core/CMakeFiles/iocov_core.dir/iocov.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/iocov.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/iocov_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/iocov_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/report_io.cpp.o.d"
  "/root/repo/src/core/syscall_spec.cpp" "src/core/CMakeFiles/iocov_core.dir/syscall_spec.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/syscall_spec.cpp.o.d"
  "/root/repo/src/core/tcd.cpp" "src/core/CMakeFiles/iocov_core.dir/tcd.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/tcd.cpp.o.d"
  "/root/repo/src/core/untested.cpp" "src/core/CMakeFiles/iocov_core.dir/untested.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/untested.cpp.o.d"
  "/root/repo/src/core/variant_handler.cpp" "src/core/CMakeFiles/iocov_core.dir/variant_handler.cpp.o" "gcc" "src/core/CMakeFiles/iocov_core.dir/variant_handler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abi/CMakeFiles/iocov_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/iocov_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iocov_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
