
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/fault.cpp" "src/vfs/CMakeFiles/iocov_vfs.dir/fault.cpp.o" "gcc" "src/vfs/CMakeFiles/iocov_vfs.dir/fault.cpp.o.d"
  "/root/repo/src/vfs/file_data.cpp" "src/vfs/CMakeFiles/iocov_vfs.dir/file_data.cpp.o" "gcc" "src/vfs/CMakeFiles/iocov_vfs.dir/file_data.cpp.o.d"
  "/root/repo/src/vfs/filesystem.cpp" "src/vfs/CMakeFiles/iocov_vfs.dir/filesystem.cpp.o" "gcc" "src/vfs/CMakeFiles/iocov_vfs.dir/filesystem.cpp.o.d"
  "/root/repo/src/vfs/path.cpp" "src/vfs/CMakeFiles/iocov_vfs.dir/path.cpp.o" "gcc" "src/vfs/CMakeFiles/iocov_vfs.dir/path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abi/CMakeFiles/iocov_abi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
