file(REMOVE_RECURSE
  "libiocov_vfs.a"
)
