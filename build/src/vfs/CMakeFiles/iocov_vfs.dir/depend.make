# Empty dependencies file for iocov_vfs.
# This may be replaced when dependencies are built.
