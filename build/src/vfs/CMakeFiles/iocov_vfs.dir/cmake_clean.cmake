file(REMOVE_RECURSE
  "CMakeFiles/iocov_vfs.dir/fault.cpp.o"
  "CMakeFiles/iocov_vfs.dir/fault.cpp.o.d"
  "CMakeFiles/iocov_vfs.dir/file_data.cpp.o"
  "CMakeFiles/iocov_vfs.dir/file_data.cpp.o.d"
  "CMakeFiles/iocov_vfs.dir/filesystem.cpp.o"
  "CMakeFiles/iocov_vfs.dir/filesystem.cpp.o.d"
  "CMakeFiles/iocov_vfs.dir/path.cpp.o"
  "CMakeFiles/iocov_vfs.dir/path.cpp.o.d"
  "libiocov_vfs.a"
  "libiocov_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
