file(REMOVE_RECURSE
  "libiocov_stats.a"
)
