file(REMOVE_RECURSE
  "CMakeFiles/iocov_stats.dir/histogram.cpp.o"
  "CMakeFiles/iocov_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/iocov_stats.dir/log_bucket.cpp.o"
  "CMakeFiles/iocov_stats.dir/log_bucket.cpp.o.d"
  "CMakeFiles/iocov_stats.dir/rmsd.cpp.o"
  "CMakeFiles/iocov_stats.dir/rmsd.cpp.o.d"
  "libiocov_stats.a"
  "libiocov_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
