# Empty dependencies file for iocov_stats.
# This may be replaced when dependencies are built.
