file(REMOVE_RECURSE
  "CMakeFiles/iocov_testers.dir/fixtures.cpp.o"
  "CMakeFiles/iocov_testers.dir/fixtures.cpp.o.d"
  "CMakeFiles/iocov_testers.dir/generator.cpp.o"
  "CMakeFiles/iocov_testers.dir/generator.cpp.o.d"
  "CMakeFiles/iocov_testers.dir/profile.cpp.o"
  "CMakeFiles/iocov_testers.dir/profile.cpp.o.d"
  "CMakeFiles/iocov_testers.dir/rng.cpp.o"
  "CMakeFiles/iocov_testers.dir/rng.cpp.o.d"
  "libiocov_testers.a"
  "libiocov_testers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_testers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
