file(REMOVE_RECURSE
  "libiocov_testers.a"
)
