# Empty compiler generated dependencies file for iocov_testers.
# This may be replaced when dependencies are built.
