
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testers/fixtures.cpp" "src/testers/CMakeFiles/iocov_testers.dir/fixtures.cpp.o" "gcc" "src/testers/CMakeFiles/iocov_testers.dir/fixtures.cpp.o.d"
  "/root/repo/src/testers/generator.cpp" "src/testers/CMakeFiles/iocov_testers.dir/generator.cpp.o" "gcc" "src/testers/CMakeFiles/iocov_testers.dir/generator.cpp.o.d"
  "/root/repo/src/testers/profile.cpp" "src/testers/CMakeFiles/iocov_testers.dir/profile.cpp.o" "gcc" "src/testers/CMakeFiles/iocov_testers.dir/profile.cpp.o.d"
  "/root/repo/src/testers/rng.cpp" "src/testers/CMakeFiles/iocov_testers.dir/rng.cpp.o" "gcc" "src/testers/CMakeFiles/iocov_testers.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abi/CMakeFiles/iocov_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/iocov_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/syscall/CMakeFiles/iocov_syscall.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iocov_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
