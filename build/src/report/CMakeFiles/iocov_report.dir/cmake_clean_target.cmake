file(REMOVE_RECURSE
  "libiocov_report.a"
)
