file(REMOVE_RECURSE
  "CMakeFiles/iocov_report.dir/table.cpp.o"
  "CMakeFiles/iocov_report.dir/table.cpp.o.d"
  "libiocov_report.a"
  "libiocov_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
