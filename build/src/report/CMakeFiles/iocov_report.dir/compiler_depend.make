# Empty compiler generated dependencies file for iocov_report.
# This may be replaced when dependencies are built.
