file(REMOVE_RECURSE
  "CMakeFiles/iocov_abi.dir/errno.cpp.o"
  "CMakeFiles/iocov_abi.dir/errno.cpp.o.d"
  "CMakeFiles/iocov_abi.dir/fcntl.cpp.o"
  "CMakeFiles/iocov_abi.dir/fcntl.cpp.o.d"
  "CMakeFiles/iocov_abi.dir/seek.cpp.o"
  "CMakeFiles/iocov_abi.dir/seek.cpp.o.d"
  "CMakeFiles/iocov_abi.dir/stat_mode.cpp.o"
  "CMakeFiles/iocov_abi.dir/stat_mode.cpp.o.d"
  "libiocov_abi.a"
  "libiocov_abi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_abi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
