
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abi/errno.cpp" "src/abi/CMakeFiles/iocov_abi.dir/errno.cpp.o" "gcc" "src/abi/CMakeFiles/iocov_abi.dir/errno.cpp.o.d"
  "/root/repo/src/abi/fcntl.cpp" "src/abi/CMakeFiles/iocov_abi.dir/fcntl.cpp.o" "gcc" "src/abi/CMakeFiles/iocov_abi.dir/fcntl.cpp.o.d"
  "/root/repo/src/abi/seek.cpp" "src/abi/CMakeFiles/iocov_abi.dir/seek.cpp.o" "gcc" "src/abi/CMakeFiles/iocov_abi.dir/seek.cpp.o.d"
  "/root/repo/src/abi/stat_mode.cpp" "src/abi/CMakeFiles/iocov_abi.dir/stat_mode.cpp.o" "gcc" "src/abi/CMakeFiles/iocov_abi.dir/stat_mode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
