file(REMOVE_RECURSE
  "libiocov_abi.a"
)
