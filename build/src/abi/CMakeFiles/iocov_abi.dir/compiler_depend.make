# Empty compiler generated dependencies file for iocov_abi.
# This may be replaced when dependencies are built.
