file(REMOVE_RECURSE
  "CMakeFiles/iocov_bugstudy.dir/bugs.cpp.o"
  "CMakeFiles/iocov_bugstudy.dir/bugs.cpp.o.d"
  "CMakeFiles/iocov_bugstudy.dir/coverage_tracker.cpp.o"
  "CMakeFiles/iocov_bugstudy.dir/coverage_tracker.cpp.o.d"
  "CMakeFiles/iocov_bugstudy.dir/study.cpp.o"
  "CMakeFiles/iocov_bugstudy.dir/study.cpp.o.d"
  "libiocov_bugstudy.a"
  "libiocov_bugstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_bugstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
