
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bugstudy/bugs.cpp" "src/bugstudy/CMakeFiles/iocov_bugstudy.dir/bugs.cpp.o" "gcc" "src/bugstudy/CMakeFiles/iocov_bugstudy.dir/bugs.cpp.o.d"
  "/root/repo/src/bugstudy/coverage_tracker.cpp" "src/bugstudy/CMakeFiles/iocov_bugstudy.dir/coverage_tracker.cpp.o" "gcc" "src/bugstudy/CMakeFiles/iocov_bugstudy.dir/coverage_tracker.cpp.o.d"
  "/root/repo/src/bugstudy/study.cpp" "src/bugstudy/CMakeFiles/iocov_bugstudy.dir/study.cpp.o" "gcc" "src/bugstudy/CMakeFiles/iocov_bugstudy.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abi/CMakeFiles/iocov_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/iocov_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iocov_core.dir/DependInfo.cmake"
  "/root/repo/build/src/syscall/CMakeFiles/iocov_syscall.dir/DependInfo.cmake"
  "/root/repo/build/src/testers/CMakeFiles/iocov_testers.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/iocov_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iocov_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
