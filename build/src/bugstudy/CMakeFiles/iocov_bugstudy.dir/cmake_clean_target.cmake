file(REMOVE_RECURSE
  "libiocov_bugstudy.a"
)
