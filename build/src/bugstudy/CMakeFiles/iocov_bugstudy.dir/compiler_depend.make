# Empty compiler generated dependencies file for iocov_bugstudy.
# This may be replaced when dependencies are built.
