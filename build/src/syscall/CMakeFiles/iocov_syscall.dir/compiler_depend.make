# Empty compiler generated dependencies file for iocov_syscall.
# This may be replaced when dependencies are built.
