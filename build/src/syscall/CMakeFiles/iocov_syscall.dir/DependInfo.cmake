
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/syscall/process.cpp" "src/syscall/CMakeFiles/iocov_syscall.dir/process.cpp.o" "gcc" "src/syscall/CMakeFiles/iocov_syscall.dir/process.cpp.o.d"
  "/root/repo/src/syscall/process_io.cpp" "src/syscall/CMakeFiles/iocov_syscall.dir/process_io.cpp.o" "gcc" "src/syscall/CMakeFiles/iocov_syscall.dir/process_io.cpp.o.d"
  "/root/repo/src/syscall/process_meta.cpp" "src/syscall/CMakeFiles/iocov_syscall.dir/process_meta.cpp.o" "gcc" "src/syscall/CMakeFiles/iocov_syscall.dir/process_meta.cpp.o.d"
  "/root/repo/src/syscall/process_open.cpp" "src/syscall/CMakeFiles/iocov_syscall.dir/process_open.cpp.o" "gcc" "src/syscall/CMakeFiles/iocov_syscall.dir/process_open.cpp.o.d"
  "/root/repo/src/syscall/process_xattr.cpp" "src/syscall/CMakeFiles/iocov_syscall.dir/process_xattr.cpp.o" "gcc" "src/syscall/CMakeFiles/iocov_syscall.dir/process_xattr.cpp.o.d"
  "/root/repo/src/syscall/userbuf.cpp" "src/syscall/CMakeFiles/iocov_syscall.dir/userbuf.cpp.o" "gcc" "src/syscall/CMakeFiles/iocov_syscall.dir/userbuf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abi/CMakeFiles/iocov_abi.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/iocov_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iocov_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
