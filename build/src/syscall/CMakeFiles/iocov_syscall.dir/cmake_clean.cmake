file(REMOVE_RECURSE
  "CMakeFiles/iocov_syscall.dir/process.cpp.o"
  "CMakeFiles/iocov_syscall.dir/process.cpp.o.d"
  "CMakeFiles/iocov_syscall.dir/process_io.cpp.o"
  "CMakeFiles/iocov_syscall.dir/process_io.cpp.o.d"
  "CMakeFiles/iocov_syscall.dir/process_meta.cpp.o"
  "CMakeFiles/iocov_syscall.dir/process_meta.cpp.o.d"
  "CMakeFiles/iocov_syscall.dir/process_open.cpp.o"
  "CMakeFiles/iocov_syscall.dir/process_open.cpp.o.d"
  "CMakeFiles/iocov_syscall.dir/process_xattr.cpp.o"
  "CMakeFiles/iocov_syscall.dir/process_xattr.cpp.o.d"
  "CMakeFiles/iocov_syscall.dir/userbuf.cpp.o"
  "CMakeFiles/iocov_syscall.dir/userbuf.cpp.o.d"
  "libiocov_syscall.a"
  "libiocov_syscall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iocov_syscall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
