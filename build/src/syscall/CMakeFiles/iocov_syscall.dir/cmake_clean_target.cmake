file(REMOVE_RECURSE
  "libiocov_syscall.a"
)
